#include "spice/checkpoint.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace usys::spice {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace {

/// %.17g: the shortest printf format guaranteed to round-trip any double
/// through decimal — the whole bit-identical-resume story hangs on this.
void append_double(std::string& s, double v) {
  if (std::isnan(v)) {
    s += "null";  // JSON has no NaN; load maps null back to NaN
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  s += buf;
  // Bare integers ("42") are valid JSON numbers; nothing more to do.
}

void append_json_string(std::string& s, const std::string& v) {
  s += '"';
  for (const char c : v) {
    switch (c) {
      case '"': s += "\\\""; break;
      case '\\': s += "\\\\"; break;
      case '\n': s += "\\n"; break;
      case '\r': s += "\\r"; break;
      case '\t': s += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          s += buf;
        } else {
          s += c;
        }
    }
  }
  s += '"';
}

void append_pairs(std::string& s, const std::vector<std::pair<std::string, double>>& pairs) {
  s += '[';
  bool first = true;
  for (const auto& [name, value] : pairs) {
    if (!first) s += ',';
    first = false;
    s += '[';
    append_json_string(s, name);
    s += ',';
    append_double(s, value);
    s += ']';
  }
  s += ']';
}

}  // namespace

std::string checkpoint_line(long index, const SweepPoint& point,
                            const SweepOutcome& outcome) {
  std::string s;
  s.reserve(128);
  s += "{\"i\":";
  s += std::to_string(index);
  s += ",\"ok\":";
  s += outcome.ok ? "true" : "false";
  s += ",\"attempts\":";
  s += std::to_string(outcome.attempts);
  s += ",\"params\":";
  append_pairs(s, point.params);
  s += ",\"metrics\":";
  append_pairs(s, outcome.metrics);
  s += ",\"error\":";
  append_json_string(s, outcome.error);
  if (!outcome.ok) {
    s += ",\"failure\":{\"kind\":";
    append_json_string(s, to_string(outcome.failure.kind));
    s += ",\"analysis\":";
    append_json_string(s, outcome.failure.analysis);
    s += ",\"time\":";
    append_double(s, outcome.failure.time);
    s += ",\"iteration\":";
    s += std::to_string(outcome.failure.iteration);
    s += ",\"rescue\":";
    s += std::to_string(outcome.failure.rescue_attempts);
    s += ",\"detail\":";
    append_json_string(s, outcome.failure.detail);
    s += '}';
  }
  s += '}';
  return s;
}

CheckpointWriter::CheckpointWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr)
    throw std::runtime_error("checkpoint: cannot open '" + path + "' for append");
}

CheckpointWriter::~CheckpointWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CheckpointWriter::append(long index, const SweepPoint& point,
                              const SweepOutcome& outcome) {
  const std::string line = checkpoint_line(index, point, outcome) + "\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  // Flush per record: a kill between points loses nothing, a kill mid-write
  // loses only the torn line (which load_checkpoint skips).
  std::fflush(file_);
}

// ---------------------------------------------------------------------------
// Parser — a minimal recursive-descent JSON reader for the one record shape
// the writer produces. Full JSON values are accepted (objects, arrays,
// strings, numbers, bools, null); unknown keys are ignored so the format can
// grow fields without breaking old readers.
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  const char* p;
  const char* end;

  bool fail = false;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r' || *p == '\n')) ++p;
  }
  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    fail = true;
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return p < end && *p == c;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end - p) >= n && std::memcmp(p, lit, n) == 0) {
      p += n;
      return true;
    }
    fail = true;
    return false;
  }

  bool parse_string(std::string& out) {
    out.clear();
    if (!consume('"')) return false;
    while (p < end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p >= end) { fail = true; return false; }
        const char esc = *p++;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (end - p < 4) { fail = true; return false; }
            char hex[5] = {p[0], p[1], p[2], p[3], 0};
            c = static_cast<char>(std::strtol(hex, nullptr, 16));
            p += 4;
            break;
          }
          default: fail = true; return false;
        }
      }
      out += c;
    }
    return consume('"');
  }

  /// Number or null (null reads as NaN — the writer's encoding for it).
  bool parse_double(double& out) {
    skip_ws();
    if (p < end && *p == 'n') {
      if (!literal("null")) return false;
      out = std::numeric_limits<double>::quiet_NaN();
      return true;
    }
    char* conv_end = nullptr;
    out = std::strtod(p, &conv_end);
    if (conv_end == p) { fail = true; return false; }
    p = conv_end;
    return true;
  }

  bool parse_long(long& out) {
    double v = 0.0;
    if (!parse_double(v)) return false;
    out = static_cast<long>(v);
    return true;
  }

  bool parse_bool(bool& out) {
    skip_ws();
    if (p < end && *p == 't') { out = true; return literal("true"); }
    if (p < end && *p == 'f') { out = false; return literal("false"); }
    fail = true;
    return false;
  }

  bool parse_pairs(std::vector<std::pair<std::string, double>>& out) {
    out.clear();
    if (!consume('[')) return false;
    if (peek(']')) return consume(']');
    do {
      std::string name;
      double value = 0.0;
      if (!consume('[') || !parse_string(name) || !consume(',') ||
          !parse_double(value) || !consume(']'))
        return false;
      out.emplace_back(std::move(name), value);
    } while (peek(',') && consume(','));
    return consume(']');
  }

  /// Skips any well-formed JSON value (forward compatibility: unknown keys).
  bool skip_value() {
    skip_ws();
    if (p >= end) { fail = true; return false; }
    switch (*p) {
      case '{': {
        consume('{');
        if (peek('}')) return consume('}');
        do {
          std::string key;
          if (!parse_string(key) || !consume(':') || !skip_value()) return false;
        } while (peek(',') && consume(','));
        return consume('}');
      }
      case '[': {
        consume('[');
        if (peek(']')) return consume(']');
        do {
          if (!skip_value()) return false;
        } while (peek(',') && consume(','));
        return consume(']');
      }
      case '"': {
        std::string s;
        return parse_string(s);
      }
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: {
        double v;
        return parse_double(v);
      }
    }
  }

  bool parse_failure(FailureInfo& out) {
    if (!consume('{')) return false;
    if (peek('}')) return consume('}');
    do {
      std::string key;
      if (!parse_string(key) || !consume(':')) return false;
      if (key == "kind") {
        std::string name;
        if (!parse_string(name)) return false;
        if (!failure_kind_from_string(name, out.kind)) { fail = true; return false; }
      } else if (key == "analysis") {
        if (!parse_string(out.analysis)) return false;
      } else if (key == "time") {
        if (!parse_double(out.time)) return false;
      } else if (key == "iteration") {
        long v = 0;
        if (!parse_long(v)) return false;
        out.iteration = static_cast<int>(v);
      } else if (key == "rescue") {
        long v = 0;
        if (!parse_long(v)) return false;
        out.rescue_attempts = static_cast<int>(v);
      } else if (key == "detail") {
        if (!parse_string(out.detail)) return false;
      } else {
        if (!skip_value()) return false;
      }
    } while (peek(',') && consume(','));
    return consume('}');
  }
};

}  // namespace

bool parse_checkpoint_line(const std::string& line, CheckpointRecord& out) {
  out = CheckpointRecord{};
  Parser ps{line.data(), line.data() + line.size()};
  if (!ps.consume('{')) return false;
  bool have_index = false;
  if (!ps.peek('}')) {
    do {
      std::string key;
      if (!ps.parse_string(key) || !ps.consume(':')) return false;
      if (key == "i") {
        if (!ps.parse_long(out.index)) return false;
        have_index = true;
      } else if (key == "ok") {
        if (!ps.parse_bool(out.outcome.ok)) return false;
      } else if (key == "attempts") {
        long v = 0;
        if (!ps.parse_long(v)) return false;
        out.outcome.attempts = static_cast<int>(v);
      } else if (key == "params") {
        if (!ps.parse_pairs(out.point.params)) return false;
      } else if (key == "metrics") {
        if (!ps.parse_pairs(out.outcome.metrics)) return false;
      } else if (key == "error") {
        if (!ps.parse_string(out.outcome.error)) return false;
      } else if (key == "failure") {
        if (!ps.parse_failure(out.outcome.failure)) return false;
      } else {
        if (!ps.skip_value()) return false;
      }
    } while (ps.peek(',') && ps.consume(','));
  }
  if (!ps.consume('}')) return false;
  ps.skip_ws();
  return have_index && ps.p == ps.end && !ps.fail;
}

bool load_checkpoint(const std::string& path, CheckpointData& out, std::string* err) {
  std::ifstream in(path);
  if (!in) {
    if (err != nullptr) *err = "cannot read checkpoint file '" + path + "'";
    return false;
  }
  out.records.clear();
  std::string line;
  long skipped = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    CheckpointRecord rec;
    if (!parse_checkpoint_line(line, rec)) {
      ++skipped;  // torn tail write or foreign garbage: drop, keep loading
      continue;
    }
    out.records[rec.index] = std::move(rec);  // last record per index wins
  }
  if (skipped > 0 && err != nullptr)
    *err = std::to_string(skipped) + " malformed line(s) skipped";
  return true;
}

}  // namespace usys::spice
