// The full PXT workflow of the paper's last section, end to end:
//   1. device-level FE simulation of the plate capacitor (ANSYS substitute),
//   2. parameter extraction: C and F by numerical integration of the field,
//   3. sweep of boundary conditions -> piecewise-linear macromodel,
//   4. automatic HDL-AT model generation,
//   5. system-level simulation of the generated model with electronics
//      (a simple RC drive) — "simulation of the complete microsystem
//      including electronics".
#include <iostream>

#include "api/api.hpp"
#include "common/table.hpp"
#include "hdl/interpreter.hpp"
#include "pxt/pwl.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

using namespace usys;
using namespace usys::pxt;

int main() {
  std::cout << "=== PXT: FE characterization -> HDL model -> system simulation ===\n\n";

  // 1-2. One extraction at the operating point, with diagnostics.
  ExtractionSetup setup;
  setup.width = 0.1;
  setup.depth = 1e-3;
  setup.gap0 = 0.15e-3;
  setup.nx = 6;
  setup.ny = 10;
  const ExtractionSample probe = extract_point(setup, 0.0, 10.0);
  std::cout << "FE solve at V=10 V, x=0: C = " << fmt_sci(probe.capacitance, 5)
            << " F, F = " << fmt_sci(probe.force_mst, 5) << " N (CG iters "
            << probe.cg_iterations << ")\n";
  std::cout << "analytic:               C = " << fmt_sci(analytic_capacitance(setup, 0.0), 5)
            << " F, F = " << fmt_sci(analytic_force(setup, 0.0, 10.0), 5) << " N\n\n";

  // 3. Boundary-condition sweep -> macromodel.
  std::vector<double> xs;
  for (int i = -5; i <= 5; ++i) xs.push_back(static_cast<double>(i) * 6e-6);
  const ExtractionTable table = extract_sweep(setup, xs, {10.0}, false);
  std::cout << "swept " << xs.size() << " displacements -> C(x) table\n\n";

  // 4. Generated HDL-AT model text.
  const std::string hdl_src = generate_hdl_model(table, 3);
  std::cout << "--- generated model ---\n" << hdl_src << "\n";

  // 5. System-level: generated transducer + drive electronics (RC lowpass
  //    models a weak amplifier output stage) + the mechanical resonator.
  spice::Circuit ckt;
  const int amp = ckt.add_node("amp", Nature::electrical);
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  const int disp = ckt.add_node("disp", Nature::mechanical_translation);
  ckt.add<spice::VSource>(
      "V1", amp, spice::Circuit::kGround,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {2e-3, 10.0}, {1.0, 10.0}}));
  ckt.add<spice::Resistor>("Ramp", amp, drive, 10e3);
  ckt.add<spice::Capacitor>("Cpar", drive, spice::Circuit::kGround, 100e-12);
  ckt.add_device(hdl::instantiate(
      "XT", hdl_src, "pxt_etrans", {},
      {drive, spice::Circuit::kGround, vel, spice::Circuit::kGround}));
  ckt.add<spice::Mass>("M1", vel, 1e-4);
  ckt.add<spice::Spring>("K1", vel, spice::Circuit::kGround, 200.0);
  ckt.add<spice::Damper>("D1", vel, spice::Circuit::kGround, 40e-3);
  ckt.add<spice::StateIntegrator>("XD", disp, vel);

  spice::TranOptions opts;
  opts.tstop = 60e-3;
  const auto res = api::transient(ckt, opts);
  if (!res.ok) {
    std::cerr << "system simulation failed: " << res.error << "\n";
    return 1;
  }
  AsciiTable t({"t [ms]", "V(drive) [V]", "x [nm]"});
  for (double time = 0.0; time <= 60e-3; time += 6e-3) {
    t.add_row({fmt_num(time * 1e3), fmt_num(res.sample(time, drive), 4),
               fmt_num(res.sample(time, disp) * 1e9, 4)});
  }
  t.print(std::cout);
  std::cout << "\nThe FE-characterized model runs inside a SPICE-style netlist with\n"
               "electronics — the complete-microsystem workflow of the paper.\n";
  return 0;
}
