// Partitioned solver at the circuit level (NewtonOptions::partition):
// auto-mode engagement/decline on real circuits, DC/TRAN/AC parity between
// the partitioned and monolithic paths at 1e-12, and bit-identity across
// thread counts with partitioning active. Suite-named Partition so the TSan
// CI filter picks these up alongside the unit tests in
// tests/common/test_partition.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "api/api.hpp"
#include "core/netlist_ext.hpp"
#include "core/transducers.hpp"
#include "hdl/interpreter.hpp"
#include "hdl/stdlib.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"
#include "spice/engine.hpp"

namespace usys::spice {
namespace {

double rel_diff(const DVector& a, const DVector& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({std::abs(a[i]), std::abs(b[i]), 1e-12});
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

// --- circuits (mirroring tests/spice/test_solver_ordering.cpp) ---------------

std::unique_ptr<Circuit> relay(double v_coil) {
  core::TransducerGeometry g;
  g.area = 4e-5;
  g.gap = 0.4e-3;
  g.turns = 600;
  auto ckt = std::make_unique<Circuit>();
  const int drive = ckt->add_node("drive", Nature::electrical);
  const int coil = ckt->add_node("coil", Nature::electrical);
  const int vel = ckt->add_node("vel", Nature::mechanical_translation);
  const int disp = ckt->add_node("disp", Nature::mechanical_translation);
  ckt->add<VSource>(
      "V1", drive, Circuit::kGround,
      std::make_unique<PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {1e-3, v_coil}, {1.0, v_coil}}));
  ckt->add<Resistor>("Rcoil", drive, coil, 60.0);
  ckt->add<core::ElectromagneticTransducer>("Xrel", coil, Circuit::kGround, vel,
                                            Circuit::kGround, g);
  ckt->add<Mass>("Marm", vel, 2e-3);
  ckt->add<Spring>("Karm", vel, Circuit::kGround, 900.0);
  ckt->add<Damper>("Darm", vel, Circuit::kGround, 0.8);
  ckt->add<StateIntegrator>("XD", disp, vel);
  return ckt;
}

std::unique_ptr<Circuit> hdl_resonator() {
  auto ckt = std::make_unique<Circuit>();
  const int drive = ckt->add_node("drive", Nature::electrical);
  const int vel = ckt->add_node("vel", Nature::mechanical_translation);
  ckt->add<VSource>("V1", drive, Circuit::kGround,
                    std::make_unique<PulseWave>(0.0, 10.0, 0.0, 1e-4, 1e-4, 0.05),
                    Nature::electrical, /*ac_mag=*/1.0);
  ckt->add_device(hdl::instantiate(
      "XT", hdl::stdlib::paper_listing1(), "eletran",
      {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
      {drive, Circuit::kGround, vel, Circuit::kGround}));
  ckt->add<Mass>("M1", vel, 1e-4);
  ckt->add<Spring>("K1", vel, Circuit::kGround, 200.0);
  ckt->add<Damper>("D1", vel, Circuit::kGround, 40e-3);
  return ckt;
}

std::string tag(const char* prefix, int i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

std::unique_ptr<Circuit> transducer_array(int elements, double ac_mag = 0.0) {
  auto ckt = std::make_unique<Circuit>();
  const int drive = ckt->add_node("drive", Nature::electrical);
  ckt->add<VSource>("V1", drive, Circuit::kGround, std::make_unique<DcWave>(2.0),
                    Nature::electrical, ac_mag);
  core::TransducerGeometry g;
  g.area = 1e-8;
  g.eps_r = 1.0;
  for (int i = 0; i < elements; ++i) {
    const int mech = ckt->add_node(tag("v", i), Nature::mechanical_translation);
    g.gap = 2e-6 * (1.0 + 0.1 * (elements > 1 ? 2.0 * i / (elements - 1) - 1.0 : 0.0));
    ckt->add<core::TransverseElectrostatic>(tag("XT", i), drive, Circuit::kGround, mech,
                                            Circuit::kGround, g);
    ckt->add<Mass>(tag("M", i), mech, 1e-9);
    ckt->add<Spring>(tag("K", i), mech, Circuit::kGround, 25.0);
    ckt->add<Damper>(tag("D", i), mech, Circuit::kGround, 1e-4);
  }
  return ckt;
}

TranOptions tran_opts(double tstop, double dt) {
  TranOptions opts;
  opts.tstop = tstop;
  opts.dt_init = dt;
  opts.dt_max = dt;
  opts.adaptive = false;
  return opts;
}

// --- engagement / decline ----------------------------------------------------

TEST(Partition, DeclinesOnSmallCircuits) {
  for (const auto& build :
       {std::function<std::unique_ptr<Circuit>()>([] { return relay(6.0); }),
        std::function<std::unique_ptr<Circuit>()>([] { return hdl_resonator(); })}) {
    auto ckt = build();
    ckt->bind_all();
    NewtonOptions nopts;
    nopts.backend = MatrixBackend::sparse;
    nopts.partition = PartitionMode::auto_mode;
    NewtonSolver solver(*ckt, nopts);
    ASSERT_TRUE(solver.sparse_active());
    EXPECT_FALSE(solver.partition_active());
    EXPECT_STREQ(solver.partition_plan().decline_reason, "system too small");
  }
}

TEST(Partition, EngagesOnTransducerArray) {
  auto ckt = transducer_array(40);
  ckt->bind_all();
  NewtonOptions nopts;
  nopts.backend = MatrixBackend::sparse;
  nopts.partition = PartitionMode::auto_mode;
  NewtonSolver solver(*ckt, nopts);
  ASSERT_TRUE(solver.sparse_active());
  ASSERT_TRUE(solver.partition_active());
  const PartitionPlan& plan = solver.partition_plan();
  EXPECT_GE(plan.n_blocks, 4);
  // The shared drive net (plus the V-source branch riding on it) is the
  // whole interface; the per-element islands hold everything else.
  EXPECT_LE(static_cast<int>(plan.interface.size()), 8);
  EXPECT_EQ(plan.n, ckt->unknown_count());
}

TEST(Partition, OffByDefault) {
  auto ckt = transducer_array(40);
  ckt->bind_all();
  NewtonOptions nopts;
  nopts.backend = MatrixBackend::sparse;
  NewtonSolver solver(*ckt, nopts);
  ASSERT_TRUE(solver.sparse_active());
  EXPECT_FALSE(solver.partition_active());
}

// --- partitioned vs monolithic parity ----------------------------------------

/// Partitioned and monolithic paths factor differently (block pivoting +
/// Schur vs global pivoting) but must agree on the physics: DC, transient,
/// and AC results to 1e-12. On circuits below the partitioner's size floor
/// this degenerates to monolithic-vs-monolithic — which is exactly the
/// auto-mode contract being pinned: --partition=auto is always safe.
void expect_partition_parity(const std::function<std::unique_ptr<Circuit>()>& build,
                             double tstop, double dt, bool with_ac) {
  DcOptions dc_off;
  dc_off.newton.backend = MatrixBackend::sparse;
  DcOptions dc_auto = dc_off;
  dc_auto.newton.partition = PartitionMode::auto_mode;

  auto ckt_off = build();
  auto ckt_auto = build();
  AnalysisEngine eng_off(*ckt_off);
  AnalysisEngine eng_auto(*ckt_auto);

  const DcResult dc_o = eng_off.run_dc(dc_off);
  const DcResult dc_a = eng_auto.run_dc(dc_auto);
  ASSERT_TRUE(dc_o.converged);
  ASSERT_TRUE(dc_a.converged);
  EXPECT_TRUE(dc_a.used_sparse);
  EXPECT_LT(rel_diff(dc_o.x, dc_a.x), 1e-12);

  TranOptions topts_off = tran_opts(tstop, dt);
  topts_off.newton = dc_off.newton;
  topts_off.dc = dc_off;
  TranOptions topts_auto = tran_opts(tstop, dt);
  topts_auto.newton = dc_auto.newton;
  topts_auto.dc = dc_auto;
  const TranResult tr_o = eng_off.run_tran(topts_off);
  const TranResult tr_a = eng_auto.run_tran(topts_auto);
  ASSERT_TRUE(tr_o.ok) << tr_o.error;
  ASSERT_TRUE(tr_a.ok) << tr_a.error;
  ASSERT_EQ(tr_o.time.size(), tr_a.time.size());
  double worst = 0.0;
  for (std::size_t k = 0; k < tr_o.x.size(); ++k)
    worst = std::max(worst, rel_diff(tr_o.x[k], tr_a.x[k]));
  EXPECT_LT(worst, 1e-12);

  if (with_ac) {
    AcOptions ac_off;
    ac_off.points = 10;
    ac_off.dc = dc_off;
    AcOptions ac_auto = ac_off;
    ac_auto.dc = dc_auto;
    const AcResult ac_o = eng_off.run_ac(ac_off);
    const AcResult ac_a = eng_auto.run_ac(ac_auto);
    ASSERT_TRUE(ac_o.ok) << ac_o.error;
    ASSERT_TRUE(ac_a.ok) << ac_a.error;
    ASSERT_EQ(ac_o.freq.size(), ac_a.freq.size());
    for (std::size_t k = 0; k < ac_o.x.size(); ++k) {
      for (std::size_t i = 0; i < ac_o.x[k].size(); ++i) {
        const double scale =
            std::max({std::abs(ac_o.x[k][i]), std::abs(ac_a.x[k][i]), 1e-12});
        EXPECT_LT(std::abs(ac_o.x[k][i] - ac_a.x[k][i]) / scale, 1e-12)
            << "f=" << ac_o.freq[k] << " unknown=" << i;
      }
    }
  }
}

TEST(Partition, ParityRelayPullIn) {
  // Below the size floor: exercises the decline-and-fall-back path.
  expect_partition_parity([] { return relay(6.0); }, 1e-2, 2e-5, /*with_ac=*/false);
}

TEST(Partition, ParityHdlListing1) {
  expect_partition_parity([] { return hdl_resonator(); }, 5e-3, 5e-5, /*with_ac=*/true);
}

TEST(Partition, ParityTransducerArray) {
  // Above the size floor: the partitioned path actually engages (pinned by
  // EngagesOnTransducerArray) and must still match the monolithic physics.
  expect_partition_parity([] { return transducer_array(40, /*ac_mag=*/1.0); }, 2e-4,
                          2e-6, /*with_ac=*/true);
}

// --- determinism with partitioning + refactor threads ------------------------

/// Partitioned results are bit-identical across thread counts (all
/// cross-block reductions are serial and fixed-order), so a 4-thread
/// partitioned transient must reproduce the 1-thread partitioned transient
/// exactly — same step sequence, same solutions.
TEST(Partition, TransientTrajectoryBitIdenticalAcrossThreadCounts) {
  TranOptions opts = tran_opts(2e-4, 2e-6);
  opts.newton.backend = MatrixBackend::sparse;
  opts.newton.partition = PartitionMode::auto_mode;
  opts.dc.newton = opts.newton;

  auto ckt_serial = transducer_array(40);
  const TranResult serial = api::transient(*ckt_serial, opts);
  ASSERT_TRUE(serial.ok) << serial.error;
  EXPECT_TRUE(serial.used_sparse);

  opts.newton.solve_threads = 4;
  opts.newton.refactor_threads = 4;
  opts.dc.newton = opts.newton;
  auto ckt_par = transducer_array(40);
  const TranResult par = api::transient(*ckt_par, opts);
  ASSERT_TRUE(par.ok) << par.error;

  ASSERT_EQ(serial.time.size(), par.time.size());
  EXPECT_EQ(serial.time, par.time);
  for (std::size_t k = 0; k < serial.x.size(); ++k)
    EXPECT_EQ(serial.x[k], par.x[k]) << "point " << k;
}

/// Parallel numeric refactorization alone (partition off, monolithic LU)
/// through a full engine transient: bit-identical to the serial run — the
/// refactor-side twin of ParallelSolve.TransientTrajectoryBitIdentical.
TEST(ParallelRefactor, TransientTrajectoryBitIdentical) {
  TranOptions opts = tran_opts(2e-4, 2e-6);
  opts.newton.backend = MatrixBackend::sparse;
  opts.dc.newton.backend = MatrixBackend::sparse;

  auto ckt_serial = transducer_array(40);
  const TranResult serial = api::transient(*ckt_serial, opts);
  ASSERT_TRUE(serial.ok) << serial.error;
  EXPECT_TRUE(serial.used_sparse);

  opts.newton.refactor_threads = 4;
  opts.dc.newton.refactor_threads = 4;
  auto ckt_par = transducer_array(40);
  const TranResult par = api::transient(*ckt_par, opts);
  ASSERT_TRUE(par.ok) << par.error;

  ASSERT_EQ(serial.time.size(), par.time.size());
  EXPECT_EQ(serial.time, par.time);
  for (std::size_t k = 0; k < serial.x.size(); ++k)
    EXPECT_EQ(serial.x[k], par.x[k]) << "point " << k;
}

/// AC with partitioning: the complex ZPartitionedLu mirrors the real one,
/// so thread counts must not change any frequency point.
TEST(Partition, AcSweepBitIdenticalAcrossThreadCounts) {
  AcOptions opts;
  opts.points = 8;
  opts.dc.newton.backend = MatrixBackend::sparse;
  opts.dc.newton.partition = PartitionMode::auto_mode;
  auto ckt_serial = transducer_array(60, /*ac_mag=*/1.0);
  AnalysisEngine eng_serial(*ckt_serial);
  const AcResult serial = eng_serial.run_ac(opts);
  ASSERT_TRUE(serial.ok) << serial.error;

  opts.dc.newton.solve_threads = 4;
  opts.dc.newton.refactor_threads = 4;
  auto ckt_par = transducer_array(60, /*ac_mag=*/1.0);
  AnalysisEngine eng_par(*ckt_par);
  const AcResult par = eng_par.run_ac(opts);
  ASSERT_TRUE(par.ok) << par.error;

  ASSERT_EQ(serial.freq.size(), par.freq.size());
  double max_mag = 0.0;
  for (const auto& v : serial.x.front()) max_mag = std::max(max_mag, std::abs(v));
  EXPECT_GT(max_mag, 0.0) << "AC excitation missing: the comparison would be 0 == 0";
  for (std::size_t k = 0; k < serial.x.size(); ++k)
    EXPECT_EQ(serial.x[k], par.x[k]) << "frequency point " << k;
}

}  // namespace
}  // namespace usys::spice
