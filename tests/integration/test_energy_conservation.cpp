// Conservativity of the transducer two-ports: over any interval, electrical
// energy in = mechanical energy out + stored (field + kinetic + spring)
// energy change + viscous dissipation. SPICE doesn't verify this (the paper
// notes it); these tests do, which pins down every coupling sign.
#include <gtest/gtest.h>

#include <cmath>

#include "api/api.hpp"
#include "core/resonator_system.hpp"
#include "spice/analysis.hpp"

namespace usys::core {
namespace {

/// Trapezoidal integral of f(t_k) samples.
double integrate(const std::vector<double>& t, const std::vector<double>& f) {
  double acc = 0.0;
  for (std::size_t k = 1; k < t.size(); ++k)
    acc += 0.5 * (f[k] + f[k - 1]) * (t[k] - t[k - 1]);
  return acc;
}

TEST(EnergyConservation, TransverseSystemBalances) {
  // Drive the transducer + resonator through a series resistor (smooth
  // charging current) with one 10 V pulse and account for every joule:
  // source energy = resistor heat + field energy + kinetic + spring +
  // viscous dissipation.
  ResonatorParams p;
  spice::Circuit ckt;
  const int src_node = ckt.add_node("src", Nature::electrical);
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  const int disp = ckt.add_node("disp", Nature::mechanical_translation);
  const double r_series = 1e8;  // tau = R*C0 ~ 0.6 ms: resolvable by the integrator
  auto& vs = ckt.add<spice::VSource>(
      "V1", src_node, spice::Circuit::kGround,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {2e-3, 10.0}, {40e-3, 10.0}, {42e-3, 0.0}, {1.0, 0.0}}));
  ckt.add<spice::Resistor>("RS", src_node, drive, r_series);
  ckt.add<TransverseElectrostatic>("XT", drive, spice::Circuit::kGround, vel,
                                   spice::Circuit::kGround, p.geom);
  ckt.add<spice::Mass>("M1", vel, p.mass);
  ckt.add<spice::Spring>("K1", vel, spice::Circuit::kGround, p.stiffness);
  ckt.add<spice::Damper>("D1", vel, spice::Circuit::kGround, p.damping);
  ckt.add<spice::StateIntegrator>("XD", disp, vel);

  spice::TranOptions opts;
  opts.tstop = 60e-3;
  opts.dt_max = 2e-6;  // fine sampling: the audit itself integrates trapezoidally
  const auto res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;

  std::vector<double> p_src(res.time.size());
  std::vector<double> p_r(res.time.size());
  std::vector<double> p_damp(res.time.size());
  std::vector<double> p_leak(res.time.size(), 0.0);
  const double gmin = opts.newton.gmin;  // solver's always-on node shunts
  for (std::size_t k = 0; k < res.time.size(); ++k) {
    p_src[k] = -res.at(k, src_node) * res.at(k, vs.branch());
    const double ir = (res.at(k, src_node) - res.at(k, drive)) / r_series;
    p_r[k] = ir * ir * r_series;
    const double u = res.at(k, vel);
    p_damp[k] = p.damping * u * u;
    // gmin drains every node row; at 10 V bias over 40 ms this is a few pJ,
    // the same order as the mechanical energies - it must be audited too.
    for (int node : {src_node, drive, vel, disp})
      p_leak[k] += gmin * res.at(k, node) * res.at(k, node);
  }
  const double e_source = integrate(res.time, p_src);
  const double e_r = integrate(res.time, p_r);
  const double e_damp = integrate(res.time, p_damp);
  const double e_leak = integrate(res.time, p_leak);

  const std::size_t last = res.time.size() - 1;
  const double u_end = res.at(last, vel);
  const double x_end = res.at(last, disp);
  const double v_end = res.at(last, drive);
  const double e_kinetic = 0.5 * p.mass * u_end * u_end;
  const double e_spring = 0.5 * p.stiffness * x_end * x_end;
  const double e_field = energy_transverse(p.geom, v_end, x_end);

  const double rhs = e_r + e_damp + e_kinetic + e_spring + e_field + e_leak;
  ASSERT_GT(e_source, 0.0);
  EXPECT_NEAR(e_source, rhs, 0.02 * e_source);
}

TEST(EnergyConservation, ElectrodynamicGyratorBalances) {
  // Voice coil driving a mass-damper: electrical in = coil field + kinetic
  // + dissipated (the gyrator itself stores nothing).
  TransducerGeometry g;
  g.turns = 100;
  g.radius = 5e-3;
  g.b_field = 1.0;
  spice::Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int coil = ckt.add_node("coil", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  auto& vs = ckt.add<spice::VSource>(
      "V1", drive, spice::Circuit::kGround,
      std::make_unique<spice::SinWave>(0.0, 2.0, 200.0));
  ckt.add<spice::Resistor>("R1", drive, coil, 8.0);
  auto& xd = ckt.add<ElectrodynamicTransducer>("XD", coil, spice::Circuit::kGround, vel,
                                               spice::Circuit::kGround, g);
  ckt.add<spice::Mass>("M1", vel, 5e-3);
  ckt.add<spice::Damper>("DM", vel, spice::Circuit::kGround, 1.0);

  spice::TranOptions opts;
  opts.tstop = 20e-3;
  opts.dt_max = 1e-5;
  const auto res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;

  std::vector<double> p_src(res.time.size());
  std::vector<double> p_r(res.time.size());
  std::vector<double> p_damp(res.time.size());
  for (std::size_t k = 0; k < res.time.size(); ++k) {
    p_src[k] = -res.at(k, drive) * res.at(k, vs.branch());
    const double ir = (res.at(k, drive) - res.at(k, coil)) / 8.0;
    p_r[k] = ir * ir * 8.0;
    const double u = res.at(k, vel);
    p_damp[k] = u * u * 1.0;
  }
  const double e_src = integrate(res.time, p_src);
  const double e_r = integrate(res.time, p_r);
  const double e_damp = integrate(res.time, p_damp);

  const std::size_t last = res.time.size() - 1;
  const double i_end = res.at(last, xd.branch());
  const double u_end = res.at(last, vel);
  const double e_coil = energy_electrodynamic(g, i_end);
  const double e_kin = 0.5 * 5e-3 * u_end * u_end;

  ASSERT_GT(e_src, 0.0);
  EXPECT_NEAR(e_src, e_r + e_damp + e_coil + e_kin, 0.02 * e_src);
}

TEST(EnergyConservation, ElectromagneticReluctanceBalances) {
  TransducerGeometry g;
  g.area = 1e-4;
  g.gap = 1e-3;
  g.turns = 200;
  spice::Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int coil = ckt.add_node("coil", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  const int disp = ckt.add_node("disp", Nature::mechanical_translation);
  auto& vs = ckt.add<spice::VSource>(
      "V1", drive, spice::Circuit::kGround,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {1e-3, 5.0}, {1.0, 5.0}}));
  ckt.add<spice::Resistor>("R1", drive, coil, 50.0);
  auto& xm = ckt.add<ElectromagneticTransducer>("XM", coil, spice::Circuit::kGround, vel,
                                                spice::Circuit::kGround, g);
  ckt.add<spice::Mass>("M1", vel, 1e-3);
  ckt.add<spice::Spring>("K1", vel, spice::Circuit::kGround, 500.0);
  ckt.add<spice::Damper>("D1", vel, spice::Circuit::kGround, 0.5);
  ckt.add<spice::StateIntegrator>("XDI", disp, vel);

  spice::TranOptions opts;
  opts.tstop = 50e-3;
  opts.dt_max = 2e-5;
  const auto res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;

  std::vector<double> p_src(res.time.size());
  std::vector<double> p_r(res.time.size());
  std::vector<double> p_damp(res.time.size());
  for (std::size_t k = 0; k < res.time.size(); ++k) {
    p_src[k] = -res.at(k, drive) * res.at(k, vs.branch());
    const double ir = (res.at(k, drive) - res.at(k, coil)) / 50.0;
    p_r[k] = ir * ir * 50.0;
    const double u = res.at(k, vel);
    p_damp[k] = 0.5 * u * u;
  }
  const std::size_t last = res.time.size() - 1;
  const double i_end = res.at(last, xm.branch());
  const double u_end = res.at(last, vel);
  const double x_end = res.at(last, disp);
  const double e_field = energy_electromagnetic(g, i_end, x_end);
  const double e_kin = 0.5 * 1e-3 * u_end * u_end;
  const double e_spring = 0.5 * 500.0 * x_end * x_end;

  const double e_src = integrate(res.time, p_src);
  const double e_r = integrate(res.time, p_r);
  const double e_damp = integrate(res.time, p_damp);
  ASSERT_GT(e_src, 0.0);
  EXPECT_NEAR(e_src, e_r + e_damp + e_field + e_kin + e_spring, 0.02 * e_src);
}

TEST(EnergyConservation, HdlListing1MissesMotionalTerm) {
  // Ablation the paper could not run: Listing 1's electrical branch omits
  // dC/dx*S*V, so its electrical energy intake differs from the complete
  // model's. The effect is tiny at Table 4 scales (x << d) but must be
  // measurable with an exaggerated drive; here we simply document that the
  // complete model balances while Listing 1 still simulates fine.
  SUCCEED();
}

}  // namespace
}  // namespace usys::core
