// Island decomposition for weakly-coupled sparse systems + the block/Schur
// factorization that exploits it.
//
// The paper's headline workload — large transducer arrays — produces MNA
// matrices that are almost block-diagonal: thousands of cells, each a small
// dense-ish clique, joined only through a handful of shared drive/sense
// nets. partition_pattern() recovers that structure from the compiled CSR
// pattern alone: it peels high-degree hub vertices into an interface set
// until the remaining graph falls apart into many small components, then
// packs the components into a bounded number of blocks. PartitionedLu
// factors each block independently (in parallel across a shared ThreadPool)
// and couples them through the dense Schur complement of the interface:
//
//   [ A_BB  A_BS ] [x_B]   [b_B]      S = A_SS - sum_b A_Sb A_bb^{-1} A_bS
//   [ A_SB  A_SS ] [x_S] = [b_S],     (A_BB block-diagonal over islands)
//
// Per factorization each block b computes its sparse LU and the coupling
// solve W_b = A_bb^{-1} A_bS; the interface system S (ns x ns, ns small by
// construction) is factored dense. Per solve: y_b = A_bb^{-1} b_b in
// parallel, one serial reduction r_S = b_S - sum A_Sb y_b, the dense
// interface solve, then x_b = y_b - W_b x_S in parallel again.
//
// Everything is deterministic: the partitioner breaks every tie on the
// smallest index, and all cross-block reductions run in fixed block order
// on the calling thread — results are bit-identical across thread counts
// (though not bit-identical to the monolithic factorization, which pivots
// globally; parity there is "same solution to solver tolerance").
//
// When the pattern has no usable island structure (chains, small systems,
// hub-free meshes) partition_pattern() declines — plan.ok == false with a
// reason — and callers stay on the monolithic SparseLu. docs/partitioning.md
// walks through the formulation and the decline rules.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.hpp"     // SingularMatrixError
#include "common/sparse_lu.hpp"  // SparseLu, LuOrdering

namespace usys {

class Deadline;
class ThreadPool;

/// Tuning knobs for partition_pattern(). The defaults target the transducer
/// array topologies; all thresholds are deliberately coarse — partitioning
/// only has to engage where it wins big, and decline cleanly elsewhere.
struct PartitionOptions {
  /// Decline systems smaller than this: the Schur machinery costs more than
  /// a monolithic factorization saves.
  int min_unknowns = 64;
  /// Decline unless separator removal yields at least this many components.
  int min_islands = 4;
  /// Largest island may hold at most this fraction of the unknowns,
  /// otherwise one block dominates the parallel factorization.
  double max_island_fraction = 0.25;
  /// A separator candidate must have at least this degree; chains and other
  /// hub-free graphs fail it immediately instead of being nibbled apart.
  int min_hub_degree = 8;
  /// Give up after peeling this many hubs without the graph falling apart.
  int max_separator_rounds = 64;
  /// Interface budget; 0 = automatic (max(32, n/8)). The dense Schur system
  /// is ns x ns, so this bounds the serial part of every factorization.
  int max_interface = 0;
  /// Components are packed into at most this many blocks (round-robin by
  /// descending size), bounding per-factorization task-dispatch overhead.
  int max_blocks = 64;
};

/// Result of partition_pattern(). When ok is false the caller must use the
/// monolithic path; decline_reason says why (static string, never null
/// after a decline).
struct PartitionPlan {
  bool ok = false;
  int n = 0;
  int n_blocks = 0;
  std::vector<int> block_of;      ///< unknown -> block id, or -1 = interface
  std::vector<int> interface;     ///< interface unknowns, ascending
  const char* decline_reason = "";
};

/// Partitions an n x n CSR pattern into weakly-coupled islands plus a small
/// interface. `seed_interface` pre-loads known hubs (e.g. the shared nets
/// of an .array/TRANSARRAY netlist, computed by the caller from device
/// footprints) so structural knowledge skips the degree heuristic; the
/// heuristic still runs after seeding. Deterministic: identical inputs give
/// identical plans on every platform.
PartitionPlan partition_pattern(int n, const std::vector<int>& row_ptr,
                                const std::vector<int>& col_idx,
                                const PartitionOptions& opts = {},
                                const std::vector<int>& seed_interface = {});

/// Block/Schur factorization over a PartitionPlan. Mirrors the SparseLu
/// call shape (analyze once per pattern, factor per value set, solve in
/// place) so NewtonSolver and the AC loop can swap it in transparently.
/// factor() throws SingularMatrixError when a block or the interface system
/// is singular — callers fall back to the monolithic factorization, which
/// pivots globally and is the ground truth for solvability.
template <typename T>
class PartitionedLu {
 public:
  /// Splits the CSR pattern along `plan` (which must be ok and built from
  /// this same pattern). Every CSR slot is classified once into its block's
  /// sub-CSR, a coupling list, or the interface matrix; factor() then works
  /// entirely from value gathers through those slot maps.
  void analyze(const PartitionPlan& plan, int n, const std::vector<int>& row_ptr,
               const std::vector<int>& col_idx, LuOrdering ordering = LuOrdering::amd);

  bool analyzed() const noexcept { return n_ >= 0; }
  int size() const noexcept { return n_ < 0 ? 0 : n_; }
  int n_blocks() const noexcept { return static_cast<int>(blocks_.size()); }
  int interface_size() const noexcept { return static_cast<int>(interface_.size()); }

  /// Numeric factorization of values laid out per the analyzed CSR pattern.
  void factor(const std::vector<T>& csr_vals);
  bool factored() const noexcept { return factored_; }

  /// Solves A x = b in place. Requires factor().
  void solve(std::vector<T>& b) const;

  /// Fans block factor/solve work across `pool` (non-owning). Results are
  /// bit-identical for any thread count. Block-internal SparseLu stays
  /// serial — ThreadPool::run is not reentrant — so the parallel unit is
  /// the island, which is exactly where the work is.
  void set_parallel(ThreadPool* pool, int threads) noexcept {
    pool_ = pool;
    threads_ = (pool && threads > 1) ? threads : 1;
  }

  /// Borrows a deadline (non-owning; null = none), checked at factor/solve
  /// dispatch and inside every block factorization.
  void set_deadline(const Deadline* deadline) noexcept;

  /// Forgets every block's recorded pivot order (regime changes).
  void invalidate_pivot_order() noexcept;

  /// Max full (pivot-searching) factorization count over the blocks — the
  /// partitioned analogue of SparseLu::symbolic_factorizations().
  int symbolic_factorizations() const noexcept;

  /// Stored factor entries: block L+U totals plus the dense ns^2 Schur
  /// factor and the W coupling blocks.
  std::size_t factor_nonzeros() const noexcept;

 private:
  struct Block {
    std::vector<int> globals;    ///< block unknowns, ascending (local -> global)
    std::vector<int> row_ptr;    ///< local sub-CSR pattern
    std::vector<int> col_idx;
    std::vector<int> slot_map;   ///< local CSR slot -> global CSR slot
    SparseLu<T> lu;
    std::vector<T> vals;         ///< gathered block values (factor scratch)
    // Couplings to the interface. A_bS is stored per interface column
    // actually present in this block (cols, ascending; CSC-ish):
    std::vector<int> cols;       ///< interface indices (positions in interface_)
    std::vector<int> col_ptr;    ///< per-col range into rows/rslots
    std::vector<int> rows;       ///< local row of each A_bS entry
    std::vector<int> rslots;     ///< global CSR slot of each A_bS entry
    // A_Sb entries in pattern walk order:
    std::vector<int> sb_row;     ///< interface index (position in interface_)
    std::vector<int> sb_col;     ///< local column
    std::vector<int> sb_slot;    ///< global CSR slot
    std::vector<T> sb_vals;      ///< gathered at factor()
    std::vector<T> w;            ///< W_b = A_bb^{-1} A_bS, column-major [n_loc x |cols|]
    mutable std::vector<T> y;    ///< y_b / x_b solve scratch
  };

  void factor_block(Block& b, const std::vector<T>& csr_vals);

  int n_ = -1;
  std::vector<Block> blocks_;
  std::vector<int> interface_;    ///< interface unknowns, ascending (global ids)
  std::vector<int> place_;        ///< global -> block id, or -1 = interface
  std::vector<int> local_;        ///< global -> local index / interface position
  // A_SS pattern entries:
  std::vector<int> ss_row_, ss_col_, ss_slot_;
  // Dense Schur factor (row-major, factored in place) + pivoting state.
  std::vector<T> schur_;
  std::vector<int> spiv_;
  std::vector<double> sscale_;    ///< interface row max-scaling
  mutable std::vector<T> xs_;     ///< interface rhs/solution scratch
  bool factored_ = false;

  ThreadPool* pool_ = nullptr;    ///< non-owning; shared with assembly/solve
  int threads_ = 1;
  const Deadline* deadline_ = nullptr;
};

using DPartitionedLu = PartitionedLu<double>;
using ZPartitionedLu = PartitionedLu<std::complex<double>>;

}  // namespace usys
