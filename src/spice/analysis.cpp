#include "spice/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/constants.hpp"
#include "spice/engine.hpp"

namespace usys::spice {

// The analysis algorithms live in AnalysisEngine (spice/engine.hpp); these
// free functions are compatibility wrappers that run a fresh engine per
// call, which reproduces the historical behavior exactly (fresh solver,
// fresh pivot order, per-analysis statistics).

OpResult operating_point(Circuit& circuit, const DcOptions& opts) {
  AnalysisEngine engine(circuit);
  return engine.run_op(opts);
}

TranResult transient(Circuit& circuit, const TranOptions& opts) {
  AnalysisEngine engine(circuit);
  return engine.run_tran(opts);
}

AcResult ac_sweep(Circuit& circuit, const AcOptions& opts) {
  AnalysisEngine engine(circuit);
  return engine.run_ac(opts);
}

// ---------------------------------------------------------------------------
// Result accessors
// ---------------------------------------------------------------------------

std::vector<double> TranResult::signal(int unknown) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (std::size_t k = 0; k < x.size(); ++k) out.push_back(at(k, unknown));
  return out;
}

double TranResult::at(std::size_t k, int unknown) const {
  if (unknown < 0) return 0.0;  // ground reads 0 at any accepted point
  return x.at(k).at(static_cast<std::size_t>(unknown));
}

double TranResult::sample(double t, int unknown) const {
  if (time.empty()) return 0.0;
  if (std::isnan(t)) return std::numeric_limits<double>::quiet_NaN();
  if (t <= time.front()) return at(0, unknown);
  if (t >= time.back()) return at(time.size() - 1, unknown);
  const auto it = std::lower_bound(time.begin(), time.end(), t);
  const std::size_t k = static_cast<std::size_t>(it - time.begin());
  const double t0 = time[k - 1];
  const double t1 = time[k];
  const double w = (t1 > t0) ? (t - t0) / (t1 - t0) : 1.0;
  return (1.0 - w) * at(k - 1, unknown) + w * at(k, unknown);
}

double AcResult::magnitude_db(std::size_t k, int unknown) const {
  return 20.0 * std::log10(std::abs(at(k, unknown)));
}

double AcResult::phase_deg(std::size_t k, int unknown) const {
  return std::arg(at(k, unknown)) * 180.0 / kPi;
}

}  // namespace usys::spice
