// Regenerates Table 3: voltages and forces (efforts) derived from the
// internal energies of Table 2 — *symbolically*, via the paper's 4-step
// energy method mechanized in core::EnergyModel, then numerically checked
// against the closed forms. Also prints the generated HDL-AT models.
#include <iostream>

#include "common/constants.hpp"
#include "common/table.hpp"
#include "core/energy_model.hpp"
#include "core/reference.hpp"

using namespace usys;
using namespace usys::core;

int main() {
  std::cout << "=== Table 3: port efforts derived from transducer energies ===\n\n";

  const EnergyModel models[] = {
      make_transverse_energy_model(), make_parallel_energy_model(),
      make_electromagnetic_energy_model(), make_electrodynamic_energy_model()};

  AsciiTable t({"transducer", "derived elec. relation (dW/dstate)", "derived mech. flow (dW/dx)"});
  for (const auto& m : models) {
    const auto derived = m.derive();
    t.add_row({m.model_name(), sym::to_text(derived[0].expr), sym::to_text(derived[1].expr)});
  }
  t.print(std::cout);
  std::cout << "\n(note: the absorbed mechanical flow dW/dx is the negative of the\n"
               " force-on-plate the paper's Table 3 prints; both conventions follow\n"
               " from the same derivation — see DESIGN.md.)\n";

  std::cout << "\n--- numeric check vs closed forms (Table 4 parameters) ---\n";
  TransducerGeometry g;
  AsciiTable n({"V [V]", "x [m]", "F_table3 [N]", "F_energy_method [N]", "rel.err"});
  const EnergyModel& trans = models[0];
  for (double v : {5.0, 10.0, 15.0}) {
    for (double x : {-2e-5, 0.0, 2e-5}) {
      const double q = capacitance_transverse(g, x) * v;
      const sym::Env env{{"q", q},      {"x", x},        {"d", g.gap},
                         {"A", g.area}, {"er", g.eps_r}, {"e0", g.eps0}};
      const double f_sym = -trans.eval_port("mech", env);  // delivered force
      const double f_ref = force_transverse(g, v, x);
      n.add_row({fmt_num(v), fmt_num(x), fmt_sci(f_ref), fmt_sci(f_sym),
                 fmt_sci(std::abs(f_sym - f_ref) / std::abs(f_ref), 2)});
    }
  }
  n.print(std::cout);

  std::cout << "\n--- reciprocity (Maxwell) residuals (0 = conservative) ---\n";
  const sym::Env probe{{"q", 1e-10},  {"lambda", 1e-4}, {"x", 1e-5},
                       {"d", 1.5e-4}, {"A", 1e-4},      {"er", 1.0},
                       {"e0", kEps0Paper}, {"h", 1e-3}, {"l", 2e-3},
                       {"N", 100.0},  {"r", 5e-3},      {"B", 1.0},
                       {"mu0", kMu0Classic}};
  for (const auto& m : models) {
    std::cout << "  " << m.model_name() << ": " << fmt_sci(m.reciprocity_residual(probe), 2)
              << "\n";
  }

  std::cout << "\n--- generated HDL-AT model (energy method -> Listing-1 style) ---\n\n";
  std::cout << models[0].generate_hdl({"A", "d", "er", "e0"}) << "\n";
  std::cout << models[2].generate_hdl({"A", "d", "N", "mu0"}) << "\n";
  return 0;
}
