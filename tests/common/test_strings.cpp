#include <gtest/gtest.h>

#include "common/strings.hpp"

namespace usys {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \t"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Split) {
  const auto parts = split("a b\tc", " \t");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(split("", " ").empty());
  EXPECT_EQ(split("  a  ", " ").size(), 1u);
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_TRUE(iequals("PULSE", "pulse"));
  EXPECT_FALSE(iequals("puls", "pulse"));
}

TEST(Strings, SpiceNumbersPlain) {
  EXPECT_DOUBLE_EQ(*parse_spice_number("42"), 42.0);
  EXPECT_DOUBLE_EQ(*parse_spice_number("-1.5e-3"), -1.5e-3);
}

TEST(Strings, SpiceNumberSuffixes) {
  EXPECT_DOUBLE_EQ(*parse_spice_number("1k"), 1e3);
  EXPECT_DOUBLE_EQ(*parse_spice_number("4.7MEG"), 4.7e6);
  EXPECT_DOUBLE_EQ(*parse_spice_number("0.15m"), 0.15e-3);
  EXPECT_DOUBLE_EQ(*parse_spice_number("10u"), 1e-5);
  EXPECT_DOUBLE_EQ(*parse_spice_number("5p"), 5e-12);
  EXPECT_DOUBLE_EQ(*parse_spice_number("2n"), 2e-9);
  EXPECT_DOUBLE_EQ(*parse_spice_number("3f"), 3e-15);
  EXPECT_DOUBLE_EQ(*parse_spice_number("1g"), 1e9);
  EXPECT_DOUBLE_EQ(*parse_spice_number("1t"), 1e12);
}

TEST(Strings, SpiceNumberUnitLetters) {
  EXPECT_DOUBLE_EQ(*parse_spice_number("10V"), 10.0);
  EXPECT_DOUBLE_EQ(*parse_spice_number("10uF"), 1e-5);
}

TEST(Strings, SpiceNumberRejectsGarbage) {
  EXPECT_FALSE(parse_spice_number("abc").has_value());
  EXPECT_FALSE(parse_spice_number("").has_value());
  EXPECT_FALSE(parse_spice_number("1.2.3x!").has_value());
}

TEST(Strings, Format) {
  EXPECT_EQ(str_format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(str_format("%.3f", 1.5), "1.500");
}

}  // namespace
}  // namespace usys
