#include "common/status.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

namespace usys {

namespace {

constexpr std::pair<FailureKind, const char*> kNames[] = {
    {FailureKind::none, "none"},
    {FailureKind::singular_matrix, "singular-matrix"},
    {FailureKind::newton_divergence, "newton-divergence"},
    {FailureKind::step_underflow, "step-underflow"},
    {FailureKind::max_steps_exceeded, "max-steps-exceeded"},
    {FailureKind::timeout, "timeout"},
    {FailureKind::cancelled, "cancelled"},
    {FailureKind::codegen_fallback, "codegen-fallback"},
    {FailureKind::assert_violation, "assert-violation"},
    {FailureKind::alloc_failure, "alloc-failure"},
    {FailureKind::internal_error, "internal-error"},
    {FailureKind::lint_rejected, "lint-rejected"},
};

}  // namespace

const char* to_string(FailureKind kind) noexcept {
  for (const auto& [k, name] : kNames) {
    if (k == kind) return name;
  }
  return "internal-error";
}

bool failure_kind_from_string(std::string_view name, FailureKind& out) noexcept {
  for (const auto& [k, n] : kNames) {
    if (name == n) {
      out = k;
      return true;
    }
  }
  return false;
}

std::string FailureInfo::to_string() const {
  if (ok()) return "ok";
  std::string s = analysis.empty() ? "analysis" : analysis;
  s += ": ";
  s += usys::to_string(kind);
  char buf[64];
  if (std::isfinite(time)) {
    std::snprintf(buf, sizeof buf, " at t=%.6e", time);
    s += buf;
  }
  if (iteration >= 0 || rescue_attempts > 0) {
    std::snprintf(buf, sizeof buf, " (iters=%d, rescue_attempts=%d)",
                  iteration < 0 ? 0 : iteration, rescue_attempts);
    s += buf;
  }
  if (!detail.empty()) {
    s += ": ";
    s += detail;
  }
  return s;
}

FailureInfo make_failure(FailureKind kind, std::string analysis, std::string detail,
                         double time, int iteration, int rescue_attempts) {
  FailureInfo f;
  f.kind = kind;
  f.analysis = std::move(analysis);
  f.detail = std::move(detail);
  f.time = time;
  f.iteration = iteration;
  f.rescue_attempts = rescue_attempts;
  return f;
}

}  // namespace usys
