#include "common/deadline.hpp"

#include <limits>

#include "common/fault_inject.hpp"

namespace usys {

Deadline Deadline::after_ms(double ms, const CancelToken* cancel) {
  Deadline d;
  d.cancel_ = cancel;
  if (ms > 0.0) {
    d.limited_ = true;
    d.end_ = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double, std::milli>(ms));
  }
  return d;
}

bool Deadline::expired() const noexcept {
  if (cancel_ != nullptr && cancel_->cancelled()) return true;
  if (USYS_FAULT_POINT("deadline.expire")) return true;
  return limited_ && std::chrono::steady_clock::now() >= end_;
}

FailureKind Deadline::exceeded_kind() const noexcept {
  return (cancel_ != nullptr && cancel_->cancelled()) ? FailureKind::cancelled
                                                      : FailureKind::timeout;
}

void Deadline::check(const char* where) const {
  if (expired()) throw DeadlineError(exceeded_kind(), where);
}

double Deadline::remaining_ms() const noexcept {
  if (expired()) return 0.0;
  if (!limited_) return std::numeric_limits<double>::infinity();
  const auto left = end_ - std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(left).count();
}

}  // namespace usys
