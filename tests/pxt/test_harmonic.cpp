// Harmonic macromodeling: Levy rational fits of the resonator response and
// the transfer-function device realization.
#include <gtest/gtest.h>

#include <cmath>

#include "api/api.hpp"
#include "common/constants.hpp"
#include "pxt/harmonic.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_source.hpp"

namespace usys::pxt {
namespace {

std::vector<double> log_freqs(double f0, double f1, int n) {
  std::vector<double> out;
  for (int i = 0; i < n; ++i)
    out.push_back(f0 * std::pow(f1 / f0, static_cast<double>(i) / (n - 1)));
  return out;
}

TEST(Harmonic, ResonatorResponseShape) {
  const auto samples = resonator_response(1e-4, 200.0, 40e-3, log_freqs(1.0, 1e4, 200));
  // DC asymptote: 1/k.
  EXPECT_NEAR(std::abs(samples.front().h), 1.0 / 200.0, 1e-6);
  // Peak near f0 = 225 Hz.
  double peak = 0.0;
  double f_peak = 0.0;
  for (const auto& s : samples) {
    if (std::abs(s.h) > peak) {
      peak = std::abs(s.h);
      f_peak = s.freq_hz;
    }
  }
  const double f0 = std::sqrt(200.0 / 1e-4) / (2.0 * kPi);
  EXPECT_NEAR(f_peak, f0, 0.1 * f0);
  EXPECT_GT(peak, 1.0 / 200.0);
}

TEST(Harmonic, LevyFitRecoversSecondOrderSystem) {
  // The resonator is exactly order (0,2): the fit must be near-perfect.
  const auto samples = resonator_response(1e-4, 200.0, 40e-3, log_freqs(1.0, 5e3, 60));
  const RationalFit fit = levy_fit(samples, 0, 2);
  EXPECT_LT(fit_error(fit, samples), 1e-6);
  // Recover physical parameters from the fit: H = (1/k)/(1 + (alpha/k)s' + (m/k)s'^2)
  // with s' = s/scale.
  // In normalized s' = s/scale: H = (1/k)/(1 + (alpha/k) scale s' +
  // (m/k) scale^2 s'^2).
  EXPECT_NEAR(fit.num[0], 1.0 / 200.0, 1e-6 / 200.0);
  const double a1_expected = 40e-3 / 200.0 * fit.scale;
  const double a2_expected = 1e-4 / 200.0 * fit.scale * fit.scale;
  EXPECT_NEAR(fit.den[1], a1_expected, std::abs(a1_expected) * 1e-4);
  EXPECT_NEAR(fit.den[2], a2_expected, std::abs(a2_expected) * 1e-4);
}

TEST(Harmonic, FitOrderValidation) {
  const auto samples = resonator_response(1e-4, 200.0, 40e-3, log_freqs(1.0, 1e3, 10));
  EXPECT_THROW(levy_fit(samples, 3, 2), std::invalid_argument);
  EXPECT_THROW(levy_fit(samples, 0, 0), std::invalid_argument);
  EXPECT_THROW(levy_fit({samples[0]}, 2, 2), std::invalid_argument);
}

TEST(Harmonic, FitEvaluatesOffGrid) {
  const auto samples = resonator_response(1e-4, 200.0, 40e-3, log_freqs(1.0, 5e3, 60));
  const RationalFit fit = levy_fit(samples, 0, 2);
  const auto probe = resonator_response(1e-4, 200.0, 40e-3, {137.0, 225.0, 941.0});
  for (const auto& s : probe) {
    EXPECT_NEAR(std::abs(fit.eval(s.freq_hz) - s.h) / std::abs(s.h), 0.0, 1e-5)
        << s.freq_hz;
  }
}

TEST(Harmonic, DeviceMatchesFitInAcSweep) {
  // Realize the fitted TF as a device and AC-sweep it: |v(out)| must track
  // |H| across the resonance.
  const auto samples = resonator_response(1e-4, 200.0, 40e-3, log_freqs(1.0, 5e3, 60));
  const RationalFit fit = levy_fit(samples, 0, 2);

  spice::Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  ckt.add<spice::VSource>("V1", in, spice::Circuit::kGround,
                          std::make_unique<spice::DcWave>(0.0), Nature::electrical, 1.0,
                          0.0);
  ckt.add<TransferFunctionDevice>("H1", in, spice::Circuit::kGround, out,
                                  spice::Circuit::kGround, fit);
  spice::AcOptions opts;
  opts.f_start = 1.0;
  opts.f_stop = 5e3;
  opts.points = 30;
  const auto res = api::ac_sweep(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  for (std::size_t k = 0; k < res.freq.size(); ++k) {
    const std::complex<double> expected = fit.eval(res.freq[k]);
    const std::complex<double> got = res.at(k, out);
    EXPECT_NEAR(std::abs(got - expected), 0.0, std::abs(expected) * 1e-6 + 1e-12)
        << "f=" << res.freq[k];
  }
}

TEST(Harmonic, DeviceDcGainIsB0) {
  const auto samples = resonator_response(1e-4, 200.0, 40e-3, log_freqs(1.0, 5e3, 60));
  const RationalFit fit = levy_fit(samples, 0, 2);
  spice::Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  ckt.add<spice::VSource>("V1", in, spice::Circuit::kGround, 2.0);
  ckt.add<TransferFunctionDevice>("H1", in, spice::Circuit::kGround, out,
                                  spice::Circuit::kGround, fit);
  const auto op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(out), 2.0 * fit.num[0], std::abs(2.0 * fit.num[0]) * 1e-6);
}

TEST(Harmonic, ImproperTfRejected) {
  RationalFit bad;
  bad.num = {1.0, 1.0, 1.0};
  bad.den = {1.0, 1.0};
  EXPECT_THROW(TransferFunctionDevice("H", 0, -1, 1, -1, bad), std::invalid_argument);
}

}  // namespace
}  // namespace usys::pxt
