#include "server/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/deadline.hpp"
#include "common/json.hpp"
#include "common/socket.hpp"
#include "server/protocol.hpp"

namespace usys::server {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

const char* kind_name(spice::AnalysisCard::Kind kind) {
  switch (kind) {
    case spice::AnalysisCard::Kind::op: return "op";
    case spice::AnalysisCard::Kind::tran: return "tran";
    case spice::AnalysisCard::Kind::ac: return "ac";
  }
  return "op";
}

/// One submitted job. The connection lives here so the worker can stream to
/// it and the monitor can watch it for hangup.
struct Job {
  long id = 0;
  UnixConn conn;
  Request req;
  CancelToken cancel;
  Clock::time_point enqueued = Clock::now();
};

/// Result-cache key: everything that can change the rendered frames.
/// Deliberately EXCLUDES the thread knobs — parallel assembly / solve /
/// refactorization are bit-identical to serial by repo invariant (see
/// NewtonOptions), so requests differing only in threads share an entry.
/// The partition mode is included: partitioned results match monolithic
/// only to solver tolerance, not bit-for-bit.
std::string result_key(const Request& req, const std::string& hash) {
  std::string key = hash;
  for (const auto& spec : req.set_specs) {
    key += '|';
    key += spec;
  }
  if (req.partition) key += "|partition";
  return key;
}

struct CachedResult {
  std::vector<std::string> frames;  ///< series/rows/end_series/error lines
  bool ok = false;
  int exit_code = 0;
};

struct EngineEntry {
  std::unique_ptr<api::Session> session;
  std::mutex run_mu;  ///< one job at a time per session
};

}  // namespace

std::string StatsSnapshot::to_json() const {
  std::string out = "{\"v\":1,\"frame\":\"stats\"";
  const auto num = [&out](const char* key, double v) {
    out += ",\"";
    out += key;
    out += "\":";
    json_append_double(out, v);
  };
  num("jobs_submitted", static_cast<double>(jobs_submitted));
  num("jobs_completed", static_cast<double>(jobs_completed));
  num("jobs_ok", static_cast<double>(jobs_ok));
  num("jobs_failed", static_cast<double>(jobs_failed));
  num("jobs_cancelled", static_cast<double>(jobs_cancelled));
  num("busy_rejected", static_cast<double>(busy_rejected));
  num("bad_requests", static_cast<double>(bad_requests));
  num("parses", static_cast<double>(parses));
  num("exact_hits", static_cast<double>(exact_hits));
  num("delta_hits", static_cast<double>(delta_hits));
  num("result_hits", static_cast<double>(result_hits));
  num("evictions", static_cast<double>(evictions));
  num("cooled", static_cast<double>(cooled));
  num("symbolic_factorizations", static_cast<double>(symbolic_factorizations));
  num("queue_depth", queue_depth);
  num("engines_cached", engines_cached);
  num("engines_warm", engines_warm);
  num("uptime_s", uptime_s);
  num("jobs_per_s", jobs_per_s);
  num("latency_p50_ms", latency_p50_ms);
  num("latency_p99_ms", latency_p99_ms);
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// SimServer::Impl
// ---------------------------------------------------------------------------

struct SimServer::Impl {
  explicit Impl(ServerOptions o) : opts(std::move(o)) {
    opts.workers = std::max(1, opts.workers);
    opts.queue_capacity = std::max(1, opts.queue_capacity);
    opts.engine_cache_capacity = std::max(1, opts.engine_cache_capacity);
    opts.result_cache_capacity = std::max(0, opts.result_cache_capacity);
  }

  ServerOptions opts;
  UnixListener listener;
  bool started = false;

  std::mutex mu;  ///< guards queue, active, stopping, stats, caches' LRU
  std::condition_variable cv;
  bool stopping = false;
  std::deque<std::shared_ptr<Job>> queue;
  std::vector<std::shared_ptr<Job>> active;
  long next_job_id = 1;

  // Engine cache: hash -> entry, plus MRU-first recency list. Entries past
  // the warm capacity are cool()ed; past 2x they are evicted outright.
  std::unordered_map<std::string, std::shared_ptr<EngineEntry>> engines;
  std::list<std::string> engine_lru;  ///< front = most recently used

  // Result cache (rendered frames), same LRU scheme, own capacity.
  std::unordered_map<std::string, std::shared_ptr<const CachedResult>> results;
  std::list<std::string> result_lru;

  StatsSnapshot counters;  ///< the monotonic counters (guarded by mu)
  std::vector<double> latency_ring;
  std::size_t latency_pos = 0;
  Clock::time_point started_at = Clock::now();

  std::thread accept_thread;
  std::thread monitor_thread;
  std::vector<std::thread> workers;

  // --- lifecycle -----------------------------------------------------------

  void accept_loop() {
    while (true) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (stopping) return;
      }
      UnixConn conn = listener.accept_conn(200);
      if (!conn.valid()) continue;
      handle_connection(std::move(conn));
    }
  }

  void handle_connection(UnixConn conn) {
    std::string line;
    if (!conn.read_line(line, opts.accept_timeout_ms)) return;  // slow/gone client
    Request req;
    std::string error;
    if (!parse_request(line, req, error)) {
      conn.write_all(error_frame(2, "bad-request", error) + "\n");
      std::lock_guard<std::mutex> lock(mu);
      ++counters.bad_requests;
      return;
    }
    switch (req.op) {
      case Request::Op::ping:
        conn.write_all(pong_frame() + "\n");
        return;
      case Request::Op::stats:
        conn.write_all(snapshot().to_json() + "\n");
        return;
      case Request::Op::shutdown: {
        conn.write_all(bye_frame() + "\n");
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
        cv.notify_all();
        return;
      }
      case Request::Op::run:
      case Request::Op::sweep:
        break;
    }
    auto job = std::make_shared<Job>();
    job->conn = std::move(conn);
    job->req = std::move(req);
    {
      std::lock_guard<std::mutex> lock(mu);
      if (static_cast<int>(queue.size()) >= opts.queue_capacity) {
        ++counters.busy_rejected;
        job->conn.write_all(
            busy_frame(static_cast<int>(queue.size()), opts.queue_capacity) + "\n");
        return;  // conn closes with the job
      }
      job->id = next_job_id++;
      ++counters.jobs_submitted;
      queue.push_back(job);
      cv.notify_all();
    }
  }

  void worker_loop() {
    while (true) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (stopping) return;
        job = queue.front();
        queue.pop_front();
        active.push_back(job);
      }
      execute(*job);
      std::lock_guard<std::mutex> lock(mu);
      active.erase(std::remove(active.begin(), active.end(), job), active.end());
    }
  }

  /// Fires CancelTokens from outside the solver: client hangup (queued or
  /// streaming) and per-job wall deadlines, polled every 20 ms.
  void monitor_loop() {
    while (true) {
      std::vector<std::shared_ptr<Job>> watch;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait_for(lock, std::chrono::milliseconds(20), [&] { return stopping; });
        if (stopping) return;
        watch.assign(queue.begin(), queue.end());
        watch.insert(watch.end(), active.begin(), active.end());
      }
      for (const auto& job : watch) {
        if (job->cancel.cancelled()) continue;
        if (job->conn.peer_hung_up()) {
          job->cancel.cancel();
          continue;
        }
        if (job->req.timeout_ms > 0.0 && ms_since(job->enqueued) > job->req.timeout_ms)
          job->cancel.cancel();
      }
    }
  }

  // --- caches --------------------------------------------------------------

  void touch_engine(const std::string& hash) {
    engine_lru.remove(hash);
    engine_lru.push_front(hash);
  }

  /// Two-tier eviction, called with `mu` held after an insert. Only idle
  /// sessions (run_mu free) are demoted/evicted; busy ones are skipped and
  /// caught on a later pass.
  void evict_engines() {
    const int warm_cap = opts.engine_cache_capacity;
    const int total_cap = 2 * warm_cap;
    int rank = 0;
    for (auto it = engine_lru.begin(); it != engine_lru.end();) {
      ++rank;
      const std::string& hash = *it;
      const auto eit = engines.find(hash);
      if (eit == engines.end()) {
        it = engine_lru.erase(it);
        continue;
      }
      if (rank <= warm_cap) {
        ++it;
        continue;
      }
      std::shared_ptr<EngineEntry> entry = eit->second;
      if (!entry->run_mu.try_lock()) {
        ++it;  // a job is on it right now; revisit next insert
        continue;
      }
      if (rank <= total_cap) {
        if (entry->session->warm()) {
          entry->session->cool();
          ++counters.cooled;
        }
        entry->run_mu.unlock();
        ++it;
      } else {
        entry->run_mu.unlock();
        engines.erase(eit);
        it = engine_lru.erase(it);
        ++counters.evictions;
      }
    }
  }

  void remember_result(const std::string& key, std::shared_ptr<const CachedResult> r) {
    if (opts.result_cache_capacity <= 0) return;
    std::lock_guard<std::mutex> lock(mu);
    if (results.count(key) == 0) result_lru.push_front(key);
    results[key] = std::move(r);
    while (static_cast<int>(result_lru.size()) > opts.result_cache_capacity) {
      results.erase(result_lru.back());
      result_lru.pop_back();
    }
  }

  // --- job execution -------------------------------------------------------

  int queue_depth() {
    std::lock_guard<std::mutex> lock(mu);
    return static_cast<int>(queue.size());
  }

  void finish(Job& job, bool ok, int exit_code, const FailureInfo& failure) {
    std::lock_guard<std::mutex> lock(mu);
    ++counters.jobs_completed;
    if (ok) {
      ++counters.jobs_ok;
    } else if (failure.kind == FailureKind::cancelled ||
               failure.kind == FailureKind::timeout) {
      ++counters.jobs_cancelled;
    } else {
      ++counters.jobs_failed;
    }
    (void)exit_code;
    const double latency = ms_since(job.enqueued);
    constexpr std::size_t kRing = 512;
    if (latency_ring.size() < kRing) {
      latency_ring.push_back(latency);
    } else {
      latency_ring[latency_pos] = latency;
      latency_pos = (latency_pos + 1) % kRing;
    }
  }

  /// A sweep job: build the statistical grid (netlist .param/.measure cards
  /// + request sweep specs), fan it across a SweepRunner, stream one
  /// sweep_stats frame. Every point parses its own substituted netlist, so
  /// the engine/result caches are bypassed; the job-level deadline and
  /// hangup cancellation ride the same monitor/token path as run jobs (each
  /// point polls the token through its JobOptions).
  void execute_sweep(Job& job) {
    const auto write = [&job](const std::string& line) {
      return job.conn.write_all(line + "\n");
    };
    const Request& req = job.req;
    const std::string hash = api::content_hash(req.netlist, req.hdl_mode);
    const auto reject = [&](const std::string& message) {
      const auto failure = make_failure(FailureKind::internal_error, "sweep", message);
      write(error_frame(2, "bad-request", message));
      write(done_frame(false, 2, false, false, false, 0, ms_since(job.enqueued),
                       "none"));
      finish(job, false, 2, failure);
    };

    std::vector<spice::SweepAxis> axes;
    std::vector<spice::ParamDist> dists;
    std::vector<spice::MeasureSpec> measures;
    try {
      dists = spice::parse_param_dists(req.netlist);
      measures = spice::parse_measures(req.netlist);
    } catch (const spice::NetlistError& e) {
      reject(e.what());
      return;
    }
    for (const auto& spec : req.sweep_specs) {
      std::string why;
      const auto entry = spice::parse_sweep_entry(spec, &why);
      if (!entry) {
        reject("bad sweep spec '" + spec + "': " + why);
        return;
      }
      if (entry->is_dist) {
        // A request spec overrides a netlist .param of the same name.
        bool replaced = false;
        for (auto& d : dists) {
          if (d.name == entry->dist.name) {
            d = entry->dist;
            replaced = true;
            break;
          }
        }
        if (!replaced) dists.push_back(entry->dist);
      } else {
        axes.push_back(entry->axis);
      }
    }
    for (const auto& axis : axes) {
      for (const auto& d : dists) {
        if (d.name == axis.name) {
          reject("parameter '" + axis.name + "' is both a sweep axis and a distribution");
          return;
        }
      }
    }
    char* seed_end = nullptr;
    const unsigned long long seed = std::strtoull(req.seed.c_str(), &seed_end, 10);
    if (req.seed.empty() || seed_end == nullptr || *seed_end != '\0') {
      reject("bad seed '" + req.seed + "' (want a decimal uint64)");
      return;
    }

    spice::McOptions mc;
    mc.seed = seed;
    mc.samples = req.mc;
    // Size preflight before materializing anything: one request must not be
    // able to balloon the daemon.
    constexpr std::size_t kMaxServerSweepPoints = 1'000'000;
    std::size_t combos = 1;
    for (const auto& axis : axes) combos *= std::max<std::size_t>(1, axis.values.size());
    for (const auto& d : dists)
      if (d.kind == spice::ParamDist::Kind::corner)
        combos *= std::max<std::size_t>(1, d.values.size());
    if (combos * static_cast<std::size_t>(req.mc) > kMaxServerSweepPoints) {
      reject("sweep grid too large (" + std::to_string(combos) + " combos x " +
             std::to_string(req.mc) + " draws; server cap " +
             std::to_string(kMaxServerSweepPoints) + " points)");
      return;
    }
    const std::vector<spice::SweepPoint> grid = spice::mc_grid(axes, dists, mc);
    if (grid.empty()) {
      reject("empty sweep grid");
      return;
    }

    write(status_frame(job.id, hash, "none", queue_depth()));

    api::JobOptions popts;
    popts.cancel = &job.cancel;
    spice::SweepRunner runner(std::max(1, req.threads));
    const auto results = runner.run(
        grid,
        [&](const spice::SweepPoint& p, int attempt) {
          return api::run_sweep_point(req.netlist, p, req.hdl_mode, popts, attempt);
        },
        spice::SweepOptions{});

    if (job.cancel.cancelled()) {
      const auto failure =
          make_failure(FailureKind::cancelled, "sweep",
                       "sweep cancelled (client disconnected or deadline expired)");
      write(error_frame(3, to_string(failure.kind), failure.to_string()));
      write(done_frame(false, 3, true, false, false, 0, ms_since(job.enqueued),
                       "none"));
      finish(job, false, 3, failure);
      return;
    }

    spice::StatsRun stats;
    stats.seed_text = std::to_string(seed);
    stats.total_points = static_cast<long>(grid.size());
    stats.mc = req.mc;
    stats.measures = std::move(measures);
    long failures = 0;
    FailureInfo first_failure;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      stats.add_outcome(static_cast<long>(i), grid[i], results[i]);
      if (!results[i].ok && !results[i].skipped) {
        if (failures == 0) first_failure = results[i].failure;
        ++failures;
      }
    }
    write(sweep_stats_frame(stats));
    const bool ok = failures == 0;
    const int exit_code = ok ? 0 : 1;
    if (!ok)
      write(error_frame(exit_code, to_string(first_failure.kind),
                        std::to_string(failures) + " of " + std::to_string(grid.size()) +
                            " points failed"));
    write(done_frame(ok, exit_code, true, true, false, 0, ms_since(job.enqueued),
                     "none"));
    finish(job, ok, exit_code, ok ? FailureInfo{} : first_failure);
  }

  void execute(Job& job) {
    const auto write = [&job](const std::string& line) {
      return job.conn.write_all(line + "\n");
    };

    if (job.cancel.cancelled()) {  // died while queued (hangup or deadline)
      const auto failure = make_failure(
          FailureKind::cancelled, "job",
          "cancelled before execution (client disconnected or deadline expired)");
      write(error_frame(3, to_string(failure.kind), failure.to_string()));
      write(done_frame(false, 3, false, false, false, 0, ms_since(job.enqueued),
                       "none"));
      finish(job, false, 3, failure);
      return;
    }

    if (job.req.op == Request::Op::sweep) {
      execute_sweep(job);
      return;
    }

    const Request& req = job.req;
    const std::string hash = api::content_hash(req.netlist, req.hdl_mode);
    const std::string rkey = result_key(req, hash);

    // Tier 1: rendered-result replay.
    if (!req.no_cache) {
      std::shared_ptr<const CachedResult> hit;
      {
        std::lock_guard<std::mutex> lock(mu);
        const auto it = results.find(rkey);
        if (it != results.end()) {
          hit = it->second;
          result_lru.remove(rkey);
          result_lru.push_front(rkey);
          ++counters.result_hits;
        }
      }
      if (hit) {
        write(status_frame(job.id, hash, "result", queue_depth()));
        for (const auto& frame : hit->frames) {
          if (!write(frame)) break;
        }
        write(done_frame(hit->ok, hit->exit_code, false, false, false, 0,
                         ms_since(job.enqueued), "result"));
        finish(job, hit->ok, hit->exit_code, FailureInfo{});
        return;
      }
    }

    // Tier 2: warm-engine lookup / cold construction.
    std::shared_ptr<EngineEntry> entry;
    const char* label = "cold";
    {
      std::lock_guard<std::mutex> lock(mu);
      const auto it = engines.find(hash);
      if (it != engines.end()) {
        entry = it->second;
        touch_engine(hash);
        label = req.set_specs.empty() ? "warm" : "delta";
        if (req.set_specs.empty()) {
          ++counters.exact_hits;
        } else {
          ++counters.delta_hits;
        }
      }
    }
    if (!entry) {
      std::unique_ptr<api::Session> session;
      try {
        session = std::make_unique<api::Session>(req.netlist, req.hdl_mode);
      } catch (const spice::NetlistError& e) {
        const auto failure = make_failure(FailureKind::internal_error, "parse", e.what());
        write(error_frame(2, "netlist-error", e.what()));
        write(done_frame(false, 2, true, false, false, 0, ms_since(job.enqueued),
                         "none"));
        finish(job, false, 2, failure);
        return;
      }
      std::lock_guard<std::mutex> lock(mu);
      const auto it = engines.find(hash);
      if (it != engines.end()) {
        entry = it->second;  // a racing cold job won; use its session
        touch_engine(hash);
      } else {
        entry = std::make_shared<EngineEntry>();
        entry->session = std::move(session);
        engines.emplace(hash, entry);
        engine_lru.push_front(hash);
        ++counters.parses;
        evict_engines();
      }
    }

    // Build the facade request.
    api::JobRequest jr;
    for (const auto& spec : req.set_specs) {
      api::ParamOverride ov;
      if (!api::parse_override(spec, ov)) {
        const auto failure = make_failure(FailureKind::internal_error, "job",
                                          "malformed override '" + spec + "'");
        write(error_frame(2, "bad-request", failure.detail));
        write(done_frame(false, 2, false, false, false, 0, ms_since(job.enqueued),
                         label));
        finish(job, false, 2, failure);
        return;
      }
      jr.overrides.push_back(std::move(ov));
    }
    jr.options.assembly_threads = req.threads;
    jr.options.solve_threads = req.threads;
    jr.options.refactor_threads = req.threads;
    jr.options.partition =
        req.partition ? spice::PartitionMode::auto_mode : spice::PartitionMode::off;
    // The per-job wall deadline is enforced by the monitor through the
    // cancel token (it also covers queue wait); the solver polls the token
    // at its usual deadline sites.
    jr.options.cancel = &job.cancel;

    std::unique_lock<std::mutex> run_lock(entry->run_mu);
    write(status_frame(job.id, hash, label, queue_depth()));

    // Stream frames and capture them for the result cache in one pass.
    auto captured = std::make_shared<CachedResult>();
    bool write_ok = true;
    const auto emit = [&](std::string frame) {
      if (write_ok && !write(frame)) {
        write_ok = false;
        job.cancel.cancel();  // client gone: stop the solver at its next poll
      }
      captured->frames.push_back(std::move(frame));
    };

    constexpr std::size_t kRowsPerFrame = 64;
    api::JobResult result = entry->session->run(
        jr, [&](std::size_t index, const api::AnalysisOutcome& outcome) {
          if (!outcome.ok) return;  // reported via the error/done frames
          const api::SeriesView view =
              api::series_view(outcome, entry->session->circuit());
          emit(series_frame(index, kind_name(outcome.kind), view.columns));
          std::vector<std::vector<double>> batch;
          batch.reserve(std::min(view.rows, kRowsPerFrame));
          for (std::size_t k = 0; k < view.rows; ++k) {
            batch.push_back(view.row_at(k));
            if (batch.size() == kRowsPerFrame) {
              emit(rows_frame(index, batch));
              batch.clear();
            }
          }
          if (!batch.empty()) emit(rows_frame(index, batch));
          emit(end_series_frame(index, view.rows));
        });
    if (!result.ok) {
      emit(error_frame(result.exit_code, to_string(result.failure.kind), result.error));
    }
    write(done_frame(result.ok, result.exit_code, result.parsed, result.bound,
                     result.rebound, result.symbolic_factorizations,
                     ms_since(job.enqueued), label));
    run_lock.unlock();

    if (result.ok && !req.no_cache && write_ok && !job.cancel.cancelled()) {
      captured->ok = result.ok;
      captured->exit_code = result.exit_code;
      remember_result(rkey, std::move(captured));
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      counters.symbolic_factorizations += result.symbolic_factorizations;
    }
    finish(job, result.ok, result.exit_code, result.failure);
  }

  // --- stats ---------------------------------------------------------------

  StatsSnapshot snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    StatsSnapshot s = counters;
    s.queue_depth = static_cast<int>(queue.size());
    s.engines_cached = static_cast<int>(engines.size());
    s.engines_warm = 0;
    for (const auto& [hash, entry] : engines) {
      (void)hash;
      if (entry->session->warm()) ++s.engines_warm;
    }
    s.uptime_s = ms_since(started_at) / 1000.0;
    s.jobs_per_s = s.uptime_s > 0.0 ? s.jobs_completed / s.uptime_s : 0.0;
    if (!latency_ring.empty()) {
      std::vector<double> sorted = latency_ring;
      std::sort(sorted.begin(), sorted.end());
      const auto at_quantile = [&sorted](double q) {
        const std::size_t i = static_cast<std::size_t>(q * (sorted.size() - 1));
        return sorted[i];
      };
      s.latency_p50_ms = at_quantile(0.50);
      s.latency_p99_ms = at_quantile(0.99);
    }
    return s;
  }
};

// ---------------------------------------------------------------------------
// SimServer
// ---------------------------------------------------------------------------

SimServer::SimServer(ServerOptions opts) : impl_(std::make_unique<Impl>(std::move(opts))) {}

SimServer::~SimServer() { stop(); }

bool SimServer::start(std::string* error) {
  if (impl_->started) return true;
  if (!impl_->listener.listen_on(impl_->opts.socket_path, error)) return false;
  impl_->started = true;
  impl_->started_at = Clock::now();
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
  impl_->monitor_thread = std::thread([this] { impl_->monitor_loop(); });
  impl_->workers.reserve(static_cast<std::size_t>(impl_->opts.workers));
  for (int i = 0; i < impl_->opts.workers; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  return true;
}

void SimServer::wait() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->cv.wait(lock, [&] { return impl_->stopping; });
}

void SimServer::stop() {
  if (!impl_->started) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
    impl_->cv.notify_all();
  }
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  if (impl_->monitor_thread.joinable()) impl_->monitor_thread.join();
  for (auto& w : impl_->workers) {
    if (w.joinable()) w.join();
  }
  impl_->workers.clear();
  // Jobs still queued never ran: tell their clients instead of hanging them.
  std::deque<std::shared_ptr<Job>> leftovers;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    leftovers.swap(impl_->queue);
  }
  for (const auto& job : leftovers) {
    job->conn.write_all(error_frame(3, "cancelled", "server shutting down") + "\n");
    job->conn.write_all(
        done_frame(false, 3, false, false, false, 0, ms_since(job->enqueued), "none") +
        "\n");
    std::lock_guard<std::mutex> lock(impl_->mu);
    ++impl_->counters.jobs_completed;
    ++impl_->counters.jobs_cancelled;
  }
  impl_->listener.close();
  impl_->started = false;
}

const std::string& SimServer::socket_path() const { return impl_->opts.socket_path; }

StatsSnapshot SimServer::stats() const { return impl_->snapshot(); }

int serve_blocking(const ServerOptions& opts) {
  SimServer server(opts);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  std::cout << "usim server listening on " << opts.socket_path << " ("
            << opts.workers << " workers, queue " << opts.queue_capacity
            << ", engine cache " << opts.engine_cache_capacity << ")\n"
            << std::flush;
  server.wait();
  const StatsSnapshot s = server.stats();
  server.stop();
  std::cout << "usim server shut down: " << s.jobs_completed << " jobs ("
            << s.jobs_ok << " ok, " << s.jobs_failed << " failed, "
            << s.jobs_cancelled << " cancelled), " << s.parses << " parses, "
            << s.exact_hits + s.delta_hits << " engine hits, " << s.result_hits
            << " result hits\n";
  return 0;
}

}  // namespace usys::server
