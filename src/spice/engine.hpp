// AnalysisEngine — the shared simulation core behind DC, transient, and AC.
//
// The paper's central analogy ("FE and SPICE simulators present analogies
// concerning the analysis types they can perform: static-dc, harmonic-ac,
// transient-transient") used to be realized as three free functions that
// each rebuilt their own bind/assemble/solve plumbing. The engine owns that
// plumbing ONCE per circuit:
//
//   * the bound unknown layout and compiled CSR stamp pattern
//     (Circuit::mna_pattern — built lazily, cached for the circuit's life);
//   * one NewtonSolver — sparse/dense backend selection, the flat Jf/Jq
//     value arrays, the sparse LU with its symbolic factorization, and the
//     (optional) parallel-assembly thread pool — reused across run_op /
//     run_tran / run_ac calls instead of being rebuilt per analysis;
//   * the integrator machinery of the transient loop.
//
// The legacy free functions (operating_point / transient / ac_sweep /
// solve_dc) remain as thin compatibility wrappers that construct a fresh
// engine per call, so their results are unchanged; batch workloads
// (spice/sweep.hpp, usim --sweep) construct one engine per worker and run
// many analyses against it.
//
// Reuse semantics: the solver backend is (re)built only when an analysis
// asks for a different backend configuration (MatrixBackend /
// sparse_threshold / assembly_threads); convergence controls are re-tuned
// in place. Per-run statistics (symbolic_factorizations) are reported as
// deltas, so a reused engine reports 0 extra symbolic factorizations once
// its pivot order is warm. After changing device PARAMETERS (values, not
// circuit structure — structure is frozen at bind), call rebind() to drop
// the warm solver state while keeping the compiled pattern.
#pragma once

#include <memory>

#include "spice/analysis.hpp"
#include "spice/lint.hpp"

namespace usys::spice {

class AnalysisEngine {
 public:
  /// Binds the circuit (idempotent) and runs the errors-only static
  /// preflight (spice/lint.hpp). The circuit must outlive the engine.
  explicit AnalysisEngine(Circuit& circuit);
  ~AnalysisEngine();

  AnalysisEngine(const AnalysisEngine&) = delete;
  AnalysisEngine& operator=(const AnalysisEngine&) = delete;

  Circuit& circuit() noexcept { return circuit_; }

  /// DC operating point (plain Newton, then gmin / source stepping).
  DcResult run_dc(const DcOptions& opts = {});
  /// run_dc repackaged as the analysis-level result.
  OpResult run_op(const DcOptions& opts = {});
  /// Adaptive transient from a fresh operating point.
  TranResult run_tran(const TranOptions& opts);
  /// Small-signal sweep linearized at a fresh operating point.
  AcResult run_ac(const AcOptions& opts);

  /// Re-arms the engine after external device-parameter changes: drops the
  /// warm solver (pivot order, value arrays) so the next run restamps and
  /// refactors from scratch, while the circuit's compiled MNA pattern —
  /// which depends only on structure — is reused as-is.
  void rebind();

  /// True while the engine holds warm solver state (LU factors, recorded
  /// pivot order, value arrays) from a previous run. The server's engine
  /// cache reports this in /stats and uses it to pick eviction victims.
  bool warm() const noexcept { return solver_ != nullptr; }

  /// Cache-eviction hook: sheds the warm solver state — the memory-heavy
  /// part of a cached engine — while keeping the bound circuit, compiled
  /// pattern, and preflight report, so a cooled engine still skips
  /// parse/bind on its next use and only pays one fresh symbolic
  /// factorization. Equivalent to rebind() today; kept as its own verb so
  /// cache policy and parameter-change semantics can diverge.
  void cool() { rebind(); }

  /// The construction-time static diagnostics pass (errors-only options:
  /// the expensive matching probe and the HDL re-surface are left to
  /// `usim --lint`). When it holds errors, every run_* call returns a
  /// FailureKind::lint_rejected result instead of attempting a solve.
  const LintReport& preflight() const noexcept { return preflight_; }

 private:
  /// The engine's one solver, (re)built only on backend-config changes and
  /// re-tuned in place otherwise.
  NewtonSolver& solver_for(const NewtonOptions& opts);

  /// run_dc under a caller-owned deadline, so run_tran / run_ac can make one
  /// budget cover their initial operating point AND their own stepping (the
  /// dc options' own timeout fields are zeroed by those callers).
  DcResult run_dc_under(const DcOptions& opts, const Deadline& dl);

  /// Which numerical regime the shared solver's recorded pivot order came
  /// from. Crossing regimes (DC <-> transient) drops the pivot order so
  /// results never depend on what ran before — same-regime reruns keep it.
  enum class FactorRegime { none, dc, transient };
  void enter_regime(NewtonSolver& solver, FactorRegime regime);

  Circuit& circuit_;
  LintReport preflight_;
  std::unique_ptr<NewtonSolver> solver_;
  NewtonOptions solver_opts_;  ///< options solver_ was built with
  FactorRegime regime_ = FactorRegime::none;
};

}  // namespace usys::spice
