// Wire protocol of the simulation server (docs/server.md).
//
// Line-delimited JSON over a local Unix socket, version-tagged: every line —
// request and response alike — carries `"v":1`. One request per connection;
// the server answers with a stream of response frames and closes.
//
//   request  {"v":1,"op":"run","netlist":"...","hdl":"...","set":[...],...}
//            {"v":1,"op":"sweep","netlist":"...","sweep":[...],"mc":N,"seed":"S",...}
//            {"v":1,"op":"stats"} | {"v":1,"op":"ping"} | {"v":1,"op":"shutdown"}
//   frames   status -> (series -> rows* -> end_series)* -> [error] -> done
//            status -> sweep_stats -> [error] -> done        (op == sweep)
//            or: busy | stats | pong | bye | error
//
// This header owns the translation both directions: request line -> Request
// struct (parse_request / build_request for the client) and result pieces ->
// frame lines (each builder returns ONE line, no trailing newline).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "spice/stats.hpp"

namespace usys::server {

inline constexpr int kProtocolVersion = 1;

/// One parsed client request.
struct Request {
  enum class Op { run, sweep, stats, ping, shutdown } op = Op::run;
  std::string netlist;                 ///< netlist text (op == run | sweep)
  std::string hdl_mode;                ///< "" = netlist decides
  std::vector<std::string> set_specs;  ///< "DEV.PARAM=value" overrides
  double timeout_ms = 0.0;             ///< per-job wall budget; 0 = none
  int threads = 1;                     ///< assembly/solve/refactor budget
  bool partition = false;              ///< PartitionMode::auto_mode
  bool no_cache = false;               ///< bypass the result cache (benching)

  // op == sweep: a Monte Carlo / corner batch (docs/sweeps.md). The
  // netlist's own .param/.measure cards apply; `sweep_specs` adds
  // "name=lo:hi:n | v1,v2 | normal(mu,sigma) | uniform(lo,hi) |
  // corner(...)" entries on top, exactly the usim --sweep grammar.
  std::vector<std::string> sweep_specs;
  int mc = 1;               ///< Monte Carlo draws per grid combination
  std::string seed = "0";   ///< RNG seed, decimal uint64 as text
};

/// Parses one request line. False (with `error` filled) on malformed JSON,
/// wrong/missing version, unknown op, or a run request without a netlist.
bool parse_request(const std::string& line, Request& out, std::string& error);

/// Client side: serializes a Request back to one wire line.
std::string build_request(const Request& req);

// --- response frame builders ------------------------------------------------

/// Job admitted: which cache tier served it. `cached` is one of
/// "cold" (fresh parse+bind), "warm" (engine cache, exact hash),
/// "delta" (engine cache + rebind for overrides), "result" (replayed frames).
std::string status_frame(long job_id, const std::string& hash, const char* cached,
                         int queue_depth);

/// Opens one analysis' series: kind is "op" / "tran" / "ac".
std::string series_frame(std::size_t analysis, const char* kind,
                         const std::vector<std::string>& columns);

/// A batch of data rows for the currently open series.
std::string rows_frame(std::size_t analysis,
                       const std::vector<std::vector<double>>& rows);

std::string end_series_frame(std::size_t analysis, std::size_t points);

/// Analysis/job failure. `code` is the usim exit-code contract (1/2/3),
/// `kind` a FailureKind name ("newton-divergence", ...).
std::string error_frame(int code, const std::string& kind, const std::string& message);

/// Queue-full rejection — sent instead of status, then the connection closes.
std::string busy_frame(int queue_depth, int capacity);

/// Terminal frame of every run. Carries the job's cache provenance so
/// clients (and the warm-cache tests) can verify what the job paid.
std::string done_frame(bool ok, int exit_code, bool parsed, bool bound, bool rebound,
                       int symbolic_factorizations, double elapsed_ms,
                       const char* cached);

/// Result payload of a sweep job: grid size, executed/ok/pass counts,
/// yield, per-metric summaries (count/mean/stddev/min/max/quantiles) and
/// per-measure failure counts — the distilled StatsRun, not per-point data
/// (shard locally with usim for point-level files).
std::string sweep_stats_frame(const spice::StatsRun& run);

std::string pong_frame();
std::string bye_frame();

}  // namespace usys::server
