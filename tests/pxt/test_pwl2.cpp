// Bilinear F(x, V) macromodel and the force-table transducer device.
#include <gtest/gtest.h>

#include <cmath>

#include "api/api.hpp"
#include "core/reference.hpp"
#include "pxt/pwl.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys::pxt {
namespace {

TEST(Pwl2, ExactOnBilinearFunction) {
  // f(x, v) = 2 + 3x + 4v + 5xv is reproduced exactly by bilinear interp.
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> vs{0.0, 2.0};
  std::vector<double> vals;
  for (double x : xs) {
    for (double v : vs) vals.push_back(2.0 + 3.0 * x + 4.0 * v + 5.0 * x * v);
  }
  const Pwl2 f(xs, vs, vals);
  for (double x : {0.25, 0.9, 1.5}) {
    for (double v : {0.5, 1.9}) {
      EXPECT_NEAR(f(x, v), 2.0 + 3.0 * x + 4.0 * v + 5.0 * x * v, 1e-12);
      EXPECT_NEAR(f.d_dx(x, v), 3.0 + 5.0 * v, 1e-12);
      EXPECT_NEAR(f.d_dv(x, v), 4.0 + 5.0 * x, 1e-12);
    }
  }
}

TEST(Pwl2, ClampsOutsideGrid) {
  const Pwl2 f({0.0, 1.0}, {0.0, 1.0}, {0.0, 0.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(f(-5.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(5.0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(f.d_dx(5.0, 0.5), 0.0);
}

TEST(Pwl2, Validation) {
  EXPECT_THROW(Pwl2({0.0}, {0.0, 1.0}, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Pwl2({1.0, 0.0}, {0.0, 1.0}, {0.0, 0.0, 0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(Pwl2({0.0, 1.0}, {0.0, 1.0}, {0.0}), std::invalid_argument);
}

ExtractionTable analytic_table2d() {
  ExtractionSetup setup;
  setup.width = 0.1;
  setup.depth = 1e-3;
  setup.gap0 = 0.15e-3;
  ExtractionTable t;
  t.setup = setup;
  for (int i = -6; i <= 6; ++i) t.displacements.push_back(static_cast<double>(i) * 5e-6);
  for (double v = 0.0; v <= 16.0; v += 1.0) t.voltages.push_back(v);
  for (double x : t.displacements) {
    for (double v : t.voltages) {
      ExtractionSample s;
      s.displacement = x;
      s.voltage = v;
      s.capacitance = analytic_capacitance(setup, x);
      s.force_mst = analytic_force(setup, x, v);
      t.samples.push_back(s);
    }
  }
  return t;
}

TEST(Pwl2, ForceModelTracksAnalytic) {
  const auto table = analytic_table2d();
  const Pwl2 f = force_model(table);
  for (double x : {-2.2e-5, 0.0, 1.3e-5}) {
    for (double v : {3.5, 9.5, 14.5}) {
      // Linear interp of the V^2 axis has midpoint error (h/2)^2 = h^2/4,
      // i.e. 0.25/12.25 = 2.04 % at v = 3.5 on the 1 V grid, shrinking
      // quadratically toward higher voltages.
      const double ref = analytic_force(table.setup, x, v);
      EXPECT_NEAR(f(x, v), ref, std::abs(ref) * 0.03 + 1e-10) << x << "," << v;
    }
  }
}

TEST(Pwl2, ForceTransducerStaticDeflection) {
  // Full table-driven device in the Fig. 3 system: static deflection within
  // the table resolution of the analytic value.
  const auto table = analytic_table2d();
  spice::Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  const int disp = ckt.add_node("disp", Nature::mechanical_translation);
  ckt.add<spice::VSource>(
      "V1", drive, spice::Circuit::kGround,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {5e-3, 10.0}, {1.0, 10.0}}));
  ckt.add<PwlForceTransducer>("XT", drive, spice::Circuit::kGround, vel,
                              spice::Circuit::kGround, capacitance_model(table),
                              force_model(table));
  ckt.add<spice::Mass>("M1", vel, 1e-4);
  ckt.add<spice::Spring>("K1", vel, spice::Circuit::kGround, 200.0);
  ckt.add<spice::Damper>("D1", vel, spice::Circuit::kGround, 40e-3);
  ckt.add<spice::StateIntegrator>("XD", disp, vel);

  spice::TranOptions opts;
  opts.tstop = 80e-3;
  const auto res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  core::ResonatorParams p;
  const double x_expected = core::static_displacement_transverse(p, 10.0);
  EXPECT_NEAR(res.sample(80e-3, disp), x_expected, std::abs(x_expected) * 0.06);
}

TEST(Pwl2, ForceTransducerEvenInVoltage) {
  // Electrostatic attraction is even in V: negative drive must deflect the
  // same way (the |V| mapping in the device).
  const auto table = analytic_table2d();
  auto run = [&](double v) {
    spice::Circuit ckt;
    const int drive = ckt.add_node("drive", Nature::electrical);
    const int vel = ckt.add_node("vel", Nature::mechanical_translation);
    const int disp = ckt.add_node("disp", Nature::mechanical_translation);
    ckt.add<spice::VSource>(
        "V1", drive, spice::Circuit::kGround,
        std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
            {0.0, 0.0}, {5e-3, v}, {1.0, v}}));
    ckt.add<PwlForceTransducer>("XT", drive, spice::Circuit::kGround, vel,
                                spice::Circuit::kGround, capacitance_model(table),
                                force_model(table));
    ckt.add<spice::Mass>("M1", vel, 1e-4);
    ckt.add<spice::Spring>("K1", vel, spice::Circuit::kGround, 200.0);
    ckt.add<spice::Damper>("D1", vel, spice::Circuit::kGround, 40e-3);
    ckt.add<spice::StateIntegrator>("XD", disp, vel);
    spice::TranOptions opts;
    opts.tstop = 60e-3;
    const auto res = api::transient(ckt, opts);
    EXPECT_TRUE(res.ok);
    return res.sample(60e-3, disp);
  };
  EXPECT_NEAR(run(10.0), run(-10.0), std::abs(run(10.0)) * 1e-3);
}

}  // namespace
}  // namespace usys::pxt
