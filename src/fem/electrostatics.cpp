#include "fem/electrostatics.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace usys::fem {
namespace {

double region_eps(const ElectrostaticProblem& p, int region) {
  const double er = (region >= 0 && region < static_cast<int>(p.eps_r.size()))
                        ? p.eps_r[static_cast<std::size_t>(region)]
                        : 1.0;
  return p.eps0 * er;
}

}  // namespace

ElectrostaticSolution solve_electrostatics(const ElectrostaticProblem& problem) {
  if (problem.mesh == nullptr)
    throw std::invalid_argument("solve_electrostatics: null mesh");
  const Mesh& mesh = *problem.mesh;
  const int n = mesh.node_count();

  // Dirichlet values per node (NaN = free).
  std::vector<double> fixed(static_cast<std::size_t>(n),
                            std::numeric_limits<double>::quiet_NaN());
  int n_bottom = 0;
  int n_top = 0;
  for (int i = 0; i < n; ++i) {
    switch (mesh.tags()[static_cast<std::size_t>(i)]) {
      case BoundaryTag::bottom:
        fixed[static_cast<std::size_t>(i)] = problem.v_bottom;
        ++n_bottom;
        break;
      case BoundaryTag::top:
        fixed[static_cast<std::size_t>(i)] = problem.v_top;
        ++n_top;
        break;
      default:
        break;
    }
  }
  if (n_bottom == 0 || n_top == 0)
    throw std::invalid_argument("solve_electrostatics: both electrodes need nodes");

  // Assemble K and the Dirichlet-corrected RHS.
  std::vector<int> rows, cols;
  std::vector<double> vals;
  rows.reserve(static_cast<std::size_t>(mesh.element_count()) * 9);
  cols.reserve(rows.capacity());
  vals.reserve(rows.capacity());
  std::vector<double> rhs(static_cast<std::size_t>(n), 0.0);

  for (int e = 0; e < mesh.element_count(); ++e) {
    const Triangle& t = mesh.triangles()[static_cast<std::size_t>(e)];
    const double twoa = mesh.twice_area(e);
    if (twoa <= 0.0) throw std::invalid_argument("solve_electrostatics: degenerate element");
    const double eps = region_eps(problem, t.region);
    const Point& p0 = mesh.points()[static_cast<std::size_t>(t.n[0])];
    const Point& p1 = mesh.points()[static_cast<std::size_t>(t.n[1])];
    const Point& p2 = mesh.points()[static_cast<std::size_t>(t.n[2])];
    const double b[3] = {p1.y - p2.y, p2.y - p0.y, p0.y - p1.y};
    const double c[3] = {p2.x - p1.x, p0.x - p2.x, p1.x - p0.x};
    const double scale = eps / (2.0 * twoa);
    for (int i = 0; i < 3; ++i) {
      const int gi = t.n[i];
      const bool gi_fixed = !std::isnan(fixed[static_cast<std::size_t>(gi)]);
      for (int j = 0; j < 3; ++j) {
        const int gj = t.n[j];
        const double kij = scale * (b[i] * b[j] + c[i] * c[j]);
        const bool gj_fixed = !std::isnan(fixed[static_cast<std::size_t>(gj)]);
        if (gi_fixed) continue;  // row replaced by identity below
        if (gj_fixed) {
          rhs[static_cast<std::size_t>(gi)] -= kij * fixed[static_cast<std::size_t>(gj)];
        } else {
          rows.push_back(gi);
          cols.push_back(gj);
          vals.push_back(kij);
        }
      }
    }
  }
  // Identity rows for fixed nodes.
  for (int i = 0; i < n; ++i) {
    if (!std::isnan(fixed[static_cast<std::size_t>(i)])) {
      rows.push_back(i);
      cols.push_back(i);
      vals.push_back(1.0);
      rhs[static_cast<std::size_t>(i)] = fixed[static_cast<std::size_t>(i)];
    }
  }

  const CsrMatrix k = CsrMatrix::from_triplets(n, rows, cols, vals);
  ElectrostaticSolution sol;
  sol.phi.assign(static_cast<std::size_t>(n), 0.0);
  // Warm start from the linear interpolation between electrode potentials
  // (exact for the fringe-free plate, so CG converges in a few iterations).
  for (int i = 0; i < n; ++i) {
    if (!std::isnan(fixed[static_cast<std::size_t>(i)]))
      sol.phi[static_cast<std::size_t>(i)] = fixed[static_cast<std::size_t>(i)];
  }
  const CgResult cg = cg_solve(k, rhs, sol.phi);
  sol.converged = cg.converged;
  sol.cg_iterations = cg.iterations;

  // Element fields: E = -grad(phi), constant per P1 element.
  sol.ex.assign(static_cast<std::size_t>(mesh.element_count()), 0.0);
  sol.ey.assign(static_cast<std::size_t>(mesh.element_count()), 0.0);
  for (int e = 0; e < mesh.element_count(); ++e) {
    const Triangle& t = mesh.triangles()[static_cast<std::size_t>(e)];
    const double twoa = mesh.twice_area(e);
    const Point& p0 = mesh.points()[static_cast<std::size_t>(t.n[0])];
    const Point& p1 = mesh.points()[static_cast<std::size_t>(t.n[1])];
    const Point& p2 = mesh.points()[static_cast<std::size_t>(t.n[2])];
    const double b[3] = {p1.y - p2.y, p2.y - p0.y, p0.y - p1.y};
    const double c[3] = {p2.x - p1.x, p0.x - p2.x, p1.x - p0.x};
    double gx = 0.0;
    double gy = 0.0;
    for (int i = 0; i < 3; ++i) {
      const double u = sol.phi[static_cast<std::size_t>(t.n[i])];
      gx += b[i] * u;
      gy += c[i] * u;
    }
    sol.ex[static_cast<std::size_t>(e)] = -gx / twoa;
    sol.ey[static_cast<std::size_t>(e)] = -gy / twoa;
  }
  return sol;
}

double field_energy(const ElectrostaticProblem& p, const ElectrostaticSolution& s) {
  const Mesh& mesh = *p.mesh;
  double w = 0.0;
  for (int e = 0; e < mesh.element_count(); ++e) {
    const double eps = region_eps(p, mesh.triangles()[static_cast<std::size_t>(e)].region);
    const double e2 = s.ex[static_cast<std::size_t>(e)] * s.ex[static_cast<std::size_t>(e)] +
                      s.ey[static_cast<std::size_t>(e)] * s.ey[static_cast<std::size_t>(e)];
    w += 0.5 * eps * e2 * 0.5 * mesh.twice_area(e);
  }
  return w;
}

double capacitance_per_depth(const ElectrostaticProblem& p, const ElectrostaticSolution& s) {
  const double dv = p.v_bottom - p.v_top;
  if (dv == 0.0) throw std::invalid_argument("capacitance: zero electrode voltage");
  return 2.0 * field_energy(p, s) / (dv * dv);
}

double maxwell_force_per_depth(const ElectrostaticProblem& p,
                               const ElectrostaticSolution& s, BoundaryTag tag) {
  // Integrate the Maxwell stress over the electrode: for each boundary edge
  // on `tag`, evaluate T*n in the adjacent element. The enclosing-surface
  // normal points from the field region into the conductor: +y for the top
  // electrode... the *outward* normal of the surface wrapped around the
  // conductor points back into the field, i.e. -y for top, +y for bottom.
  const Mesh& mesh = *p.mesh;
  const double ny = (tag == BoundaryTag::top) ? -1.0 : +1.0;

  double fy = 0.0;
  for (int e = 0; e < mesh.element_count(); ++e) {
    const Triangle& t = mesh.triangles()[static_cast<std::size_t>(e)];
    // Find an element edge with both endpoints on the electrode.
    for (int k = 0; k < 3; ++k) {
      const int n1 = t.n[k];
      const int n2 = t.n[(k + 1) % 3];
      if (mesh.tags()[static_cast<std::size_t>(n1)] != tag ||
          mesh.tags()[static_cast<std::size_t>(n2)] != tag)
        continue;
      const Point& a = mesh.points()[static_cast<std::size_t>(n1)];
      const Point& b = mesh.points()[static_cast<std::size_t>(n2)];
      const double len = std::hypot(b.x - a.x, b.y - a.y);
      const double eps = region_eps(p, t.region);
      const double ex = s.ex[static_cast<std::size_t>(e)];
      const double ey = s.ey[static_cast<std::size_t>(e)];
      // Traction t = T n with T = eps (E E^T - 1/2 |E|^2 I); horizontal
      // edge, n = (0, ny):
      const double tyy = eps * (ey * ey - 0.5 * (ex * ex + ey * ey));
      fy += tyy * ny * len;
    }
  }
  return fy;
}

double virtual_work_force_per_depth(const std::function<double(double)>& energy_of_gap,
                                    double gap, double delta) {
  return (energy_of_gap(gap + delta) - energy_of_gap(gap - delta)) / (2.0 * delta);
}

}  // namespace usys::fem
