// AnalysisEngine coverage: DC/TRAN/AC parity between the engine (including
// one engine reused across analyses) and the legacy free-function path at
// 1e-12 on the relay pull-in and interpreted-HDL circuits; determinism of
// the parallel MNA assembly (N-thread results bit-identical to serial);
// rebind() after device-parameter changes; and the SweepRunner batch path.
//
// PINNED PARITY SUITE: this file intentionally keeps calling the
// [[deprecated]] spice:: free functions (operating_point / transient /
// ac_sweep / solve_dc) so the wrappers stay exercised and provably
// equivalent to the usys::api facade they forward to. Every other in-tree
// caller has migrated (docs/architecture.md); do not "fix" these.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "core/netlist_ext.hpp"
#include "core/transducers.hpp"
#include "hdl/interpreter.hpp"
#include "hdl/stdlib.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"
#include "spice/engine.hpp"
#include "spice/sweep.hpp"

namespace usys::spice {
namespace {

using CircuitBuilder = std::function<std::unique_ptr<Circuit>()>;

double rel_diff(const DVector& a, const DVector& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({std::abs(a[i]), std::abs(b[i]), 1e-12});
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

// --- circuits (mirroring tests/spice/test_sparse_vs_dense.cpp) --------------

std::unique_ptr<Circuit> relay(double v_coil) {
  core::TransducerGeometry g;
  g.area = 4e-5;
  g.gap = 0.4e-3;
  g.turns = 600;
  auto ckt = std::make_unique<Circuit>();
  const int drive = ckt->add_node("drive", Nature::electrical);
  const int coil = ckt->add_node("coil", Nature::electrical);
  const int vel = ckt->add_node("vel", Nature::mechanical_translation);
  const int disp = ckt->add_node("disp", Nature::mechanical_translation);
  ckt->add<VSource>(
      "V1", drive, Circuit::kGround,
      std::make_unique<PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {1e-3, v_coil}, {1.0, v_coil}}));
  ckt->add<Resistor>("Rcoil", drive, coil, 60.0);
  ckt->add<core::ElectromagneticTransducer>("Xrel", coil, Circuit::kGround, vel,
                                            Circuit::kGround, g);
  ckt->add<Mass>("Marm", vel, 2e-3);
  ckt->add<Spring>("Karm", vel, Circuit::kGround, 900.0);
  ckt->add<Damper>("Darm", vel, Circuit::kGround, 0.8);
  ckt->add<StateIntegrator>("XD", disp, vel);
  return ckt;
}

std::unique_ptr<Circuit> hdl_resonator() {
  auto ckt = std::make_unique<Circuit>();
  const int drive = ckt->add_node("drive", Nature::electrical);
  const int vel = ckt->add_node("vel", Nature::mechanical_translation);
  ckt->add<VSource>("V1", drive, Circuit::kGround,
                    std::make_unique<PulseWave>(0.0, 10.0, 0.0, 1e-4, 1e-4, 0.05),
                    Nature::electrical, /*ac_mag=*/1.0);
  ckt->add_device(hdl::instantiate(
      "XT", hdl::stdlib::paper_listing1(), "eletran",
      {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
      {drive, Circuit::kGround, vel, Circuit::kGround}));
  ckt->add<Mass>("M1", vel, 1e-4);
  ckt->add<Spring>("K1", vel, Circuit::kGround, 200.0);
  ckt->add<Damper>("D1", vel, Circuit::kGround, 40e-3);
  return ckt;
}

/// "prefix<i>" without the const char* + temporary-string operator+ overload
/// (GCC 12's -Wrestrict false-positives on that exact pattern at -O3).
std::string tag(const char* prefix, int i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

/// N-element transverse-transducer array below pull-in, all electrical
/// ports on a shared bus — the workload the parallel assembler targets.
std::unique_ptr<Circuit> transducer_array(int elements) {
  auto ckt = std::make_unique<Circuit>();
  const int drive = ckt->add_node("drive", Nature::electrical);
  ckt->add<VSource>("V1", drive, Circuit::kGround, 2.0);
  core::TransducerGeometry g;
  g.area = 1e-8;
  g.eps_r = 1.0;
  for (int i = 0; i < elements; ++i) {
    const int mech = ckt->add_node(tag("v", i), Nature::mechanical_translation);
    g.gap = 2e-6 * (1.0 + 0.1 * (elements > 1 ? 2.0 * i / (elements - 1) - 1.0 : 0.0));
    ckt->add<core::TransverseElectrostatic>(tag("XT", i), drive, Circuit::kGround, mech,
                                            Circuit::kGround, g);
    ckt->add<Mass>(tag("M", i), mech, 1e-9);
    ckt->add<Spring>(tag("K", i), mech, Circuit::kGround, 25.0);
    ckt->add<Damper>(tag("D", i), mech, Circuit::kGround, 1e-4);
  }
  return ckt;
}

TranOptions tran_opts(double tstop, double dt) {
  TranOptions opts;
  opts.tstop = tstop;
  opts.dt_init = dt;
  opts.dt_max = dt;
  opts.adaptive = false;
  return opts;
}

// --- engine vs free functions -----------------------------------------------

/// One engine reused across op -> tran -> ac must reproduce the legacy
/// fresh-call-per-analysis results to 1e-12.
void expect_engine_parity(const CircuitBuilder& build, double tstop, double dt,
                          bool with_ac) {
  const TranOptions topts = tran_opts(tstop, dt);
  AcOptions aopts;
  aopts.points = 10;

  auto ckt_legacy_op = build();
  const OpResult op_legacy = operating_point(*ckt_legacy_op);
  auto ckt_legacy_tran = build();
  const TranResult tran_legacy = transient(*ckt_legacy_tran, topts);

  auto ckt_engine = build();
  AnalysisEngine engine(*ckt_engine);
  const OpResult op_engine = engine.run_op();
  ASSERT_TRUE(op_legacy.converged);
  ASSERT_TRUE(op_engine.converged);
  EXPECT_LT(rel_diff(op_legacy.x, op_engine.x), 1e-12);

  const TranResult tran_engine = engine.run_tran(topts);
  ASSERT_TRUE(tran_legacy.ok) << tran_legacy.error;
  ASSERT_TRUE(tran_engine.ok) << tran_engine.error;
  ASSERT_EQ(tran_legacy.time.size(), tran_engine.time.size());
  double worst = 0.0;
  for (std::size_t k = 0; k < tran_legacy.x.size(); ++k)
    worst = std::max(worst, rel_diff(tran_legacy.x[k], tran_engine.x[k]));
  EXPECT_LT(worst, 1e-12);

  if (with_ac) {
    auto ckt_legacy_ac = build();
    const AcResult ac_legacy = ac_sweep(*ckt_legacy_ac, aopts);
    const AcResult ac_engine = engine.run_ac(aopts);
    ASSERT_TRUE(ac_legacy.ok) << ac_legacy.error;
    ASSERT_TRUE(ac_engine.ok) << ac_engine.error;
    ASSERT_EQ(ac_legacy.freq.size(), ac_engine.freq.size());
    for (std::size_t k = 0; k < ac_legacy.x.size(); ++k) {
      for (std::size_t i = 0; i < ac_legacy.x[k].size(); ++i) {
        const double scale = std::max(
            {std::abs(ac_legacy.x[k][i]), std::abs(ac_engine.x[k][i]), 1e-12});
        EXPECT_LT(std::abs(ac_legacy.x[k][i] - ac_engine.x[k][i]) / scale, 1e-12)
            << "f=" << ac_legacy.freq[k] << " unknown=" << i;
      }
    }
  }
}

TEST(AnalysisEngine, ParityRelayPullIn) {
  expect_engine_parity([] { return relay(6.0); }, 1e-2, 2e-5, /*with_ac=*/false);
}

TEST(AnalysisEngine, ParityHdlListing1) {
  expect_engine_parity([] { return hdl_resonator(); }, 5e-3, 5e-5, /*with_ac=*/true);
}

TEST(AnalysisEngine, ReportsPerRunSymbolicFactorizations) {
  auto ckt = transducer_array(30);
  AnalysisEngine engine(*ckt);
  DcOptions opts;
  opts.newton.backend = MatrixBackend::sparse;
  const DcResult first = engine.run_dc(opts);
  ASSERT_TRUE(first.converged);
  EXPECT_TRUE(first.used_sparse);
  EXPECT_EQ(first.symbolic_factorizations, 1);
  // A warm engine replays the recorded pivot order: 0 NEW symbolic runs.
  const DcResult second = engine.run_dc(opts);
  ASSERT_TRUE(second.converged);
  EXPECT_EQ(second.symbolic_factorizations, 0);
  EXPECT_LT(rel_diff(first.x, second.x), 1e-15);
}

TEST(AnalysisEngine, RebindPicksUpParameterChanges) {
  auto ckt = relay(6.0);
  AnalysisEngine engine(*ckt);
  ASSERT_TRUE(engine.run_op().converged);

  auto* xd = dynamic_cast<core::ElectromagneticTransducer*>(ckt->find_device("Xrel"));
  ASSERT_NE(xd, nullptr);
  xd->set_initial_displacement(-0.05e-3);
  engine.rebind();
  const OpResult changed = engine.run_op();
  ASSERT_TRUE(changed.converged);

  // Fresh circuit with the same parameter must agree exactly.
  auto ckt_ref = relay(6.0);
  auto* xd_ref =
      dynamic_cast<core::ElectromagneticTransducer*>(ckt_ref->find_device("Xrel"));
  ASSERT_NE(xd_ref, nullptr);
  xd_ref->set_initial_displacement(-0.05e-3);
  const OpResult ref = operating_point(*ckt_ref);
  ASSERT_TRUE(ref.converged);
  EXPECT_LT(rel_diff(changed.x, ref.x), 1e-12);
}

// --- parallel assembly determinism ------------------------------------------

/// Direct assembler check: the parallel gather must reproduce the serial
/// scatter BIT-IDENTICALLY (==, not NEAR) for every thread count.
TEST(ParallelAssembly, BitIdenticalToSerial) {
  auto ckt = transducer_array(97);  // odd count: uneven device chunks
  ckt->bind_all();
  const MnaPattern& pattern = ckt->mna_pattern();
  ASSERT_TRUE(pattern.complete());
  const auto n = static_cast<std::size_t>(ckt->unknown_count());

  DVector x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) x[i] = 0.01 * std::sin(static_cast<double>(i));
  EvalCtx ctx;
  ctx.mode = AnalysisMode::transient;
  ctx.time = 1e-6;
  ctx.integ_c1 = 1e-6;

  MnaAssembler serial(*ckt, pattern, 1);
  DVector f0, q0;
  serial.assemble(ctx, x, f0, q0);

  for (int threads : {2, 4, 8}) {
    MnaAssembler par(*ckt, pattern, threads);
    DVector f1, q1;
    par.assemble(ctx, x, f1, q1);
    EXPECT_EQ(serial.jf_values(), par.jf_values()) << threads << " threads";
    EXPECT_EQ(serial.jq_values(), par.jq_values()) << threads << " threads";
    EXPECT_EQ(f0, f1) << threads << " threads";
    EXPECT_EQ(q0, q1) << threads << " threads";
  }
}

/// End-to-end: a full adaptive transient with 4 assembly threads must take
/// the exact step sequence and produce the exact solutions of the serial run.
TEST(ParallelAssembly, TransientTrajectoryBitIdentical) {
  TranOptions opts = tran_opts(2e-4, 2e-6);
  opts.newton.backend = MatrixBackend::sparse;
  opts.dc.newton.backend = MatrixBackend::sparse;

  auto ckt_serial = transducer_array(40);
  const TranResult serial = transient(*ckt_serial, opts);
  ASSERT_TRUE(serial.ok) << serial.error;
  EXPECT_TRUE(serial.used_sparse);

  opts.newton.assembly_threads = 4;
  opts.dc.newton.assembly_threads = 4;
  auto ckt_par = transducer_array(40);
  const TranResult par = transient(*ckt_par, opts);
  ASSERT_TRUE(par.ok) << par.error;

  ASSERT_EQ(serial.time.size(), par.time.size());
  EXPECT_EQ(serial.time, par.time);
  for (std::size_t k = 0; k < serial.x.size(); ++k)
    EXPECT_EQ(serial.x[k], par.x[k]) << "point " << k;
}

/// An HDL (bytecode VM, stateful executor) device inside the parallel pass:
/// every device is evaluated exactly once per pass, so the VM never races
/// and the result still matches serial bit for bit.
TEST(ParallelAssembly, HdlDeviceBitIdentical) {
  const auto build = [] { return hdl_resonator(); };
  auto ckt_a = build();
  ckt_a->bind_all();
  const MnaPattern& pat_a = ckt_a->mna_pattern();
  ASSERT_TRUE(pat_a.complete());
  const auto n = static_cast<std::size_t>(ckt_a->unknown_count());
  DVector x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) x[i] = 0.1 + 0.05 * static_cast<double>(i);
  EvalCtx ctx;
  ctx.mode = AnalysisMode::dc;

  MnaAssembler serial(*ckt_a, pat_a, 1);
  DVector f0, q0;
  serial.assemble(ctx, x, f0, q0);
  MnaAssembler par(*ckt_a, pat_a, 3);
  DVector f1, q1;
  par.assemble(ctx, x, f1, q1);
  EXPECT_EQ(serial.jf_values(), par.jf_values());
  EXPECT_EQ(serial.jq_values(), par.jq_values());
  EXPECT_EQ(f0, f1);
  EXPECT_EQ(q0, q1);
}

// --- sweep runner ------------------------------------------------------------

TEST(SweepRunner, GridIsCartesianLastAxisFastest) {
  const auto grid = sweep_grid({SweepAxis::linspace("a", 0.0, 1.0, 2),
                                SweepAxis::linspace("b", 10.0, 30.0, 3)});
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_DOUBLE_EQ(grid[0].value("a"), 0.0);
  EXPECT_DOUBLE_EQ(grid[0].value("b"), 10.0);
  EXPECT_DOUBLE_EQ(grid[1].value("b"), 20.0);
  EXPECT_DOUBLE_EQ(grid[2].value("b"), 30.0);
  EXPECT_DOUBLE_EQ(grid[3].value("a"), 1.0);
  EXPECT_DOUBLE_EQ(grid[3].value("b"), 10.0);
  EXPECT_THROW(grid[0].value("missing"), std::out_of_range);
}

TEST(SweepRunner, ParallelGridMatchesAnalyticResults) {
  // 4 x 4 = 16-point grid over a resistive divider: vout = vin * r2/(r1+r2).
  const auto grid = sweep_grid({SweepAxis::linspace("vin", 1.0, 4.0, 4),
                                SweepAxis::linspace("r2", 1e3, 4e3, 4)});
  ASSERT_EQ(grid.size(), 16u);

  SweepRunner runner(4);
  const auto results = runner.run(grid, [](const SweepPoint& p) {
    auto ckt = std::make_unique<Circuit>();
    const int in = ckt->add_node("in", Nature::electrical);
    const int mid = ckt->add_node("mid", Nature::electrical);
    ckt->add<VSource>("V1", in, Circuit::kGround, p.value("vin"));
    ckt->add<Resistor>("R1", in, mid, 1e3);
    ckt->add<Resistor>("R2", mid, Circuit::kGround, p.value("r2"));
    AnalysisEngine engine(*ckt);
    const OpResult op = engine.run_op();
    SweepOutcome out;
    out.ok = op.converged;
    out.metrics.emplace_back("vout", op.at(mid));
    return out;
  });

  ASSERT_EQ(results.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << "point " << i;
    const double vin = grid[i].value("vin");
    const double r2 = grid[i].value("r2");
    EXPECT_NEAR(results[i].metrics[0].second, vin * r2 / (1e3 + r2), 1e-6)
        << "point " << i;
  }
}

TEST(SweepRunner, JobExceptionFailsOnlyThatPoint) {
  const auto grid = sweep_grid({SweepAxis::linspace("k", 0.0, 3.0, 4)});
  SweepRunner runner(2);
  const auto results = runner.run(grid, [](const SweepPoint& p) {
    if (p.value("k") == 2.0) throw std::runtime_error("boom at k=2");
    SweepOutcome out;
    out.ok = true;
    out.metrics.emplace_back("k2", p.value("k") * p.value("k"));
    return out;
  });
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_TRUE(results[1].ok);
  EXPECT_FALSE(results[2].ok);
  EXPECT_EQ(results[2].error, "boom at k=2");
  EXPECT_TRUE(results[3].ok);
  EXPECT_DOUBLE_EQ(results[3].metrics[0].second, 9.0);
}

}  // namespace
}  // namespace usys::spice
