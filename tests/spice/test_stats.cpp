// Statistics correctness for the Monte Carlo sweep engine (spice/stats.hpp):
// exact golden values on tiny sample sets, analytic-distribution checks at
// N=10k, degenerate cases, measure/yield evaluation, and the shard-merge
// byte-identity contract of the stats JSONL document.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "spice/stats.hpp"

namespace usys::spice {
namespace {

class StatsFileTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : files_) std::remove(p.c_str());
  }

  /// A fresh path under the test temp dir, deleted on teardown.
  std::string temp_path(const std::string& name) {
    std::string p = ::testing::TempDir() + "usys_stats_" +
                    ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
                    name + ".jsonl";
    files_.push_back(p);
    return p;
  }

  static std::string slurp(const std::string& path) {
    std::ifstream f(path);
    return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
  }

 private:
  std::vector<std::string> files_;
};

// ---------------------------------------------------------------------------
// MetricStats: exact small-set goldens
// ---------------------------------------------------------------------------

TEST(MetricStats, ExactMomentsOnFourSamples) {
  MetricStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(5.0 / 3.0));  // sample (n-1) stddev
  EXPECT_DOUBLE_EQ(s.min_value(), 1.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 4.0);
}

TEST(MetricStats, Type7QuantilesOnFourSamples) {
  // numpy default (type 7): h = (n-1)q, linear interpolation.
  MetricStats s;
  for (double v : {4.0, 1.0, 3.0, 2.0}) s.add(v);  // unsorted on purpose
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 1.75);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 3.25);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
}

TEST(MetricStats, DegenerateCases) {
  MetricStats one;
  one.add(7.5);
  EXPECT_EQ(one.count(), 1);
  EXPECT_DOUBLE_EQ(one.mean(), 7.5);
  EXPECT_DOUBLE_EQ(one.stddev(), 0.0);  // n < 2
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 7.5);
  EXPECT_DOUBLE_EQ(one.min_value(), 7.5);
  EXPECT_DOUBLE_EQ(one.max_value(), 7.5);

  MetricStats flat;  // zero variance
  for (int i = 0; i < 100; ++i) flat.add(-3.25);
  EXPECT_DOUBLE_EQ(flat.mean(), -3.25);
  EXPECT_DOUBLE_EQ(flat.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(flat.quantile(0.99), -3.25);

  MetricStats empty;
  EXPECT_EQ(empty.count(), 0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(MetricStats, NonFiniteSamplesAreIgnored) {
  MetricStats s;
  s.add(1.0);
  s.add(std::numeric_limits<double>::quiet_NaN());
  s.add(std::numeric_limits<double>::infinity());
  s.add(3.0);
  EXPECT_EQ(s.count(), 2);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

// ---------------------------------------------------------------------------
// Analytic distributions at N=10k (through the production RNG)
// ---------------------------------------------------------------------------

TEST(MetricStats, UniformGoldensAtN10k) {
  const double lo = -1.0;
  const double hi = 3.0;
  const int n = 10'000;
  MetricStats s;
  for (int c = 0; c < n; ++c)
    s.add(rng_uniform(31, static_cast<std::uint64_t>(c), 1, lo, hi));
  const double width = hi - lo;
  EXPECT_NEAR(s.mean(), (lo + hi) / 2.0, 0.05 * width);
  EXPECT_NEAR(s.stddev(), width / std::sqrt(12.0), 0.05 * width);
  EXPECT_NEAR(s.quantile(0.5), 1.0, 0.05 * width);
  EXPECT_NEAR(s.quantile(0.05), lo + 0.05 * width, 0.05 * width);
  EXPECT_NEAR(s.quantile(0.95), lo + 0.95 * width, 0.05 * width);
  EXPECT_GE(s.min_value(), lo);
  EXPECT_LT(s.max_value(), hi);
}

TEST(MetricStats, NormalGoldensAtN10k) {
  const double mu = 10.0;
  const double sigma = 2.0;
  const int n = 10'000;
  MetricStats s;
  for (int c = 0; c < n; ++c)
    s.add(rng_normal(32, static_cast<std::uint64_t>(c), 2, mu, sigma));
  EXPECT_NEAR(s.mean(), mu, 0.1 * sigma);
  EXPECT_NEAR(s.stddev(), sigma, 0.05 * sigma);
  // Quantiles against the analytic z-scores.
  EXPECT_NEAR(s.quantile(0.5), mu, 0.1 * sigma);
  EXPECT_NEAR(s.quantile(0.05), mu - 1.6449 * sigma, 0.15 * sigma);
  EXPECT_NEAR(s.quantile(0.95), mu + 1.6449 * sigma, 0.15 * sigma);
  EXPECT_NEAR(s.quantile(0.99), mu + 2.3263 * sigma, 0.25 * sigma);
}

// ---------------------------------------------------------------------------
// Measures and yield
// ---------------------------------------------------------------------------

MeasureSpec bound(const std::string& label, const std::string& metric,
                  double lo, double hi) {
  MeasureSpec m;
  m.label = label;
  m.metric = metric;
  m.lo = lo;
  m.hi = hi;
  m.has_lo = true;
  m.has_hi = true;
  return m;
}

TEST(Measures, BoundsMissingAndNonFiniteMetrics) {
  const MeasureSpec m = bound("vout", "op:out", 1.0, 2.0);
  EXPECT_TRUE(measure_passes({{"op:out", 1.5}}, m));
  EXPECT_TRUE(measure_passes({{"op:out", 1.0}}, m));  // bounds are inclusive
  EXPECT_TRUE(measure_passes({{"op:out", 2.0}}, m));
  EXPECT_FALSE(measure_passes({{"op:out", 0.99}}, m));
  EXPECT_FALSE(measure_passes({{"op:out", 2.01}}, m));
  EXPECT_FALSE(measure_passes({{"other", 1.5}}, m));  // missing metric fails
  EXPECT_FALSE(measure_passes(
      {{"op:out", std::numeric_limits<double>::quiet_NaN()}}, m));
  EXPECT_TRUE(measures_pass({{"x", 0.0}}, {}));  // no measures: trivially pass
}

StatsRun synthetic_run(int n, const std::vector<MeasureSpec>& measures) {
  StatsRun run;
  run.seed_text = "42";
  run.total_points = n;
  run.mc = n;
  run.measures = measures;
  for (int i = 0; i < n; ++i) {
    SweepPoint p;
    p.params = {{"r", 100.0 + i}};
    SweepOutcome out;
    out.ok = i % 7 != 3;  // a few simulation failures
    if (out.ok) out.metrics = {{"m", static_cast<double>(i)}};
    out.error = out.ok ? "" : "synthetic failure";
    run.add_outcome(i, p, out);
  }
  return run;
}

TEST(StatsRun, YieldCountsPassOkAndPerMeasureFailures) {
  // m = 0..20, ok except i%7==3 (i = 3, 10, 17); measure m <= 9.5.
  MeasureSpec m;
  m.label = "upper";
  m.metric = "m";
  m.hi = 9.5;
  m.has_hi = true;
  const StatsRun run = synthetic_run(21, {m});
  const YieldSummary y = run.yield();
  EXPECT_EQ(y.n, 21);
  EXPECT_EQ(y.ok, 18);
  // Pass: ok points with m <= 9.5 -> i in {0,1,2,4,5,6,7,8,9} = 9 points.
  EXPECT_EQ(y.pass, 9);
  EXPECT_DOUBLE_EQ(y.yield, 9.0 / 21.0);
  ASSERT_EQ(y.measure_failures.size(), 1u);
  EXPECT_EQ(y.measure_failures[0].first, "upper");
  EXPECT_EQ(y.measure_failures[0].second, 9);  // 18 ok - 9 passing
}

TEST(StatsRun, AllFailYieldIsZero) {
  MeasureSpec m;
  m.label = "impossible";
  m.metric = "m";
  m.lo = 1e9;
  m.has_lo = true;
  const StatsRun run = synthetic_run(10, {m});
  const YieldSummary y = run.yield();
  EXPECT_EQ(y.pass, 0);
  EXPECT_DOUBLE_EQ(y.yield, 0.0);
}

TEST(StatsRun, SkippedOutcomesAreNotRecorded) {
  StatsRun run;
  SweepPoint p;
  SweepOutcome skipped;
  skipped.skipped = true;
  run.add_outcome(0, p, skipped);
  EXPECT_TRUE(run.points.empty());
  EXPECT_EQ(run.yield().n, 0);
  EXPECT_DOUBLE_EQ(run.yield().yield, 0.0);  // 0/0 is 0, not NaN
}

// ---------------------------------------------------------------------------
// Stats JSONL: round-trip and shard-merge byte identity
// ---------------------------------------------------------------------------

TEST_F(StatsFileTest, WriteLoadRoundTripsByteIdentically) {
  const StatsRun run = synthetic_run(21, {bound("band", "m", 2.0, 15.0)});
  const std::string path = temp_path("roundtrip");
  std::string err;
  ASSERT_TRUE(write_stats(path, run, &err)) << err;
  StatsRun loaded;
  ASSERT_TRUE(load_stats(path, loaded, &err)) << err;
  // Summaries are recomputed on write, so a load-write cycle is stable.
  EXPECT_EQ(loaded.to_jsonl(), run.to_jsonl());
  EXPECT_EQ(slurp(path), run.to_jsonl());
}

TEST_F(StatsFileTest, ShardMergeEqualsSingleRunByteForByte) {
  // The acceptance contract: 2 shards over a 1000-point MC run, merged,
  // must serialize byte-identically to the single-process run.
  const int n = 1000;
  const std::vector<MeasureSpec> measures = {bound("band", "m", -1.0, 1.0)};
  StatsRun full;
  StatsRun shard1;
  StatsRun shard2;
  for (StatsRun* r : {&full, &shard1, &shard2}) {
    r->seed_text = "42";
    r->total_points = n;
    r->mc = n;
    r->measures = measures;
  }
  shard1.shard_index = 1;
  shard1.shard_count = 2;
  shard2.shard_index = 2;
  shard2.shard_count = 2;
  for (int i = 0; i < n; ++i) {
    SweepPoint p;
    p.params = {{"x", rng_normal(42, static_cast<std::uint64_t>(i),
                                 rng_hash_name("x"), 0.0, 1.0)}};
    SweepOutcome out;
    out.ok = true;
    out.metrics = {{"m", p.params[0].second}};
    full.add_outcome(i, p, out);
    (i % 2 == 0 ? shard1 : shard2).add_outcome(i, p, out);
  }
  const std::string p1 = temp_path("shard1");
  const std::string p2 = temp_path("shard2");
  const std::string pf = temp_path("full");
  std::string err;
  ASSERT_TRUE(write_stats(p1, shard1, &err)) << err;
  ASSERT_TRUE(write_stats(p2, shard2, &err)) << err;
  ASSERT_TRUE(write_stats(pf, full, &err)) << err;
  ASSERT_NE(slurp(p1), slurp(p2));  // shards really carry disjoint points

  StatsRun merged;
  ASSERT_TRUE(merge_stats({p1, p2}, merged, &err)) << err;
  EXPECT_EQ(merged.shard_index, 0);  // canonical unsharded form
  EXPECT_EQ(merged.shard_count, 0);
  EXPECT_EQ(merged.to_jsonl(), slurp(pf));

  const std::string pm = temp_path("merged");
  ASSERT_TRUE(write_stats(pm, merged, &err)) << err;
  EXPECT_EQ(slurp(pm), slurp(pf));  // the file-level claim CI smoke re-checks

  // Merge order must not matter: points key by global index.
  StatsRun merged_rev;
  ASSERT_TRUE(merge_stats({p2, p1}, merged_rev, &err)) << err;
  EXPECT_EQ(merged_rev.to_jsonl(), merged.to_jsonl());
}

TEST_F(StatsFileTest, MergeRejectsIncompatibleHeaders) {
  StatsRun a = synthetic_run(5, {});
  StatsRun b = synthetic_run(5, {});
  b.seed_text = "43";  // different seed: these are not shards of one run
  const std::string pa = temp_path("a");
  const std::string pb = temp_path("b");
  std::string err;
  ASSERT_TRUE(write_stats(pa, a, &err)) << err;
  ASSERT_TRUE(write_stats(pb, b, &err)) << err;
  StatsRun merged;
  EXPECT_FALSE(merge_stats({pa, pb}, merged, &err));
  EXPECT_FALSE(err.empty());
}

TEST_F(StatsFileTest, LoadRejectsMissingAndMalformedFiles) {
  StatsRun out;
  std::string err;
  EXPECT_FALSE(load_stats(temp_path("nonexistent"), out, &err));
  EXPECT_FALSE(err.empty());

  const std::string path = temp_path("garbage");
  std::ofstream(path) << "this is not json\n";
  err.clear();
  EXPECT_FALSE(load_stats(path, out, &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace usys::spice
