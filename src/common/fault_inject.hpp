// Deterministic fault-injection harness (compiled in via USYS_FAULT_INJECT).
//
// Recovery code that is never exercised is broken code waiting for its first
// field failure: the gmin/source rescue ladder, the transient step-rejection
// path, the codegen fallback, and the sweep's per-point isolation all have
// failure branches that no ordinary test input reaches on demand. This
// harness makes them reachable: production code declares *sites* —
//
//   if (USYS_FAULT_POINT("sparse_lu.singular")) throw SingularMatrixError(0);
//
// — and tests arm those sites by name to fire on exact hit numbers
// (arm(site, nth, count)) or with a seeded deterministic pseudo-random
// pattern (arm_random(site, p, seed): the decision for hit #k is a pure
// function of (seed, k), so a failing run replays exactly).
//
// In normal builds USYS_FAULT_POINT compiles to the constant `false` — zero
// overhead, and the compiler drops the dead branch. With -DUSYS_FAULT_INJECT
// (CMake: -DUSYS_FAULT_INJECT=ON) every site counts its hits and consults
// the armed table; the dedicated CI job runs the whole suite this way.
//
// Arming is process-global and thread-safe; hit ordering across sweep
// workers is only deterministic when the caller runs single-threaded (tests
// that target "the Nth solve" use SweepRunner(1)). The USYS_FAULT
// environment variable arms sites before main() logic runs
// ("site:nth[:count][;site2:...]"), so the CLI and smoke tests can inject
// without a dedicated flag.
//
// Instrumented sites (keep docs/robustness.md in sync):
//   sparse_lu.singular   SparseLu<T>::factor — forces SingularMatrixError
//   dense_lu.singular    dense lu_solve — forces SingularMatrixError
//   newton.stall         NewtonSolver::solve entry — the solve returns
//                        non-converged (newton-divergence) immediately
//   deadline.expire      Deadline::expired — forces a timeout at the poll
//   codegen.compile      hdl codegen acquire — forces the host-compiler
//                        step to fail, driving the VM fallback
//   engine.alloc         AnalysisEngine::run_tran entry — throws
//                        std::bad_alloc (allocation-failure isolation)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace usys::fault {

/// True when the harness is compiled in (USYS_FAULT_INJECT builds). Tests
/// that need injection GTEST_SKIP when this is false.
constexpr bool compiled_in() noexcept {
#ifdef USYS_FAULT_INJECT
  return true;
#else
  return false;
#endif
}

/// Arms `site` to fire on hits [nth, nth+count) (hits are 1-based; count < 0
/// means "from nth onward, forever"). Re-arming a site replaces its trigger
/// and resets its counters.
void arm(std::string_view site, long nth = 1, long count = 1);

/// Arms `site` to fire pseudo-randomly with the given probability. The
/// per-hit decision is a pure hash of (seed, hit number): deterministic,
/// replayable, independent of thread interleaving.
void arm_random(std::string_view site, double probability, std::uint64_t seed);

/// Disarms one site / all sites (hit counters are dropped too).
void disarm(std::string_view site);
void disarm_all();

/// Observation: how often a site was reached / actually fired since it was
/// (re)armed. 0 for unknown sites. Unarmed sites do not count hits.
long hits(std::string_view site);
long fired(std::string_view site);

/// Names of the currently armed sites (sorted).
std::vector<std::string> armed_sites();

/// Parses and arms a spec of the form "site:nth[:count]" with multiple
/// entries joined by ';' or ','; "site~p@seed" arms the random mode.
/// Returns false (arming nothing) on malformed specs, with a diagnostic in
/// *err when provided.
bool arm_from_spec(std::string_view spec, std::string* err = nullptr);

/// The site probe behind USYS_FAULT_POINT: counts the hit and reports
/// whether the armed trigger matches. Do not call directly from production
/// code — use the macro so non-inject builds stay zero-cost.
bool should_fail(const char* site) noexcept;

}  // namespace usys::fault

#ifdef USYS_FAULT_INJECT
#define USYS_FAULT_POINT(site) (::usys::fault::should_fail(site))
#else
#define USYS_FAULT_POINT(site) false
#endif
