#include "spice/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <new>

#include "common/constants.hpp"
#include "common/deadline.hpp"
#include "common/fault_inject.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"

namespace usys::spice {

namespace {

/// Installs an analysis-scope deadline on the engine's shared solver and
/// guarantees removal on every exit path — the Deadline lives on the
/// analysis call's stack, and the solver outlives the call.
class SolverDeadlineGuard {
 public:
  SolverDeadlineGuard(NewtonSolver& solver, const Deadline& dl) : solver_(solver) {
    if (dl.active()) solver_.set_deadline(&dl);
  }
  ~SolverDeadlineGuard() { solver_.set_deadline(nullptr); }

  SolverDeadlineGuard(const SolverDeadlineGuard&) = delete;
  SolverDeadlineGuard& operator=(const SolverDeadlineGuard&) = delete;

 private:
  NewtonSolver& solver_;
};

/// Deadline/cancel verdicts abort the whole analysis — retrying a later
/// rescue stage after a timeout would just time out again, later.
bool hard_stop(FailureKind k) noexcept {
  return k == FailureKind::timeout || k == FailureKind::cancelled;
}

}  // namespace

AnalysisEngine::AnalysisEngine(Circuit& circuit) : circuit_(circuit) {
  circuit_.bind_all();
  // Errors-only preflight: the structural-singularity probe (matching) and
  // the HDL warning re-surface belong to the explicit `usim --lint` pass;
  // here we only want the defects that make a solve pointless. Warnings
  // (floating nodes, DC-only shorts, ...) never block an analysis — gmin
  // rescues most of them numerically.
  LintOptions opts;
  opts.matching = false;
  opts.hdl = false;
  preflight_ = lint_circuit(circuit_, opts);
}

AnalysisEngine::~AnalysisEngine() = default;

void AnalysisEngine::rebind() {
  circuit_.bind_all();  // idempotent; structure is frozen after the first bind
  solver_.reset();      // drop warm pivot order / value arrays; pattern survives
}

NewtonSolver& AnalysisEngine::solver_for(const NewtonOptions& opts) {
  if (!solver_ || !NewtonSolver::same_backend_config(solver_opts_, opts)) {
    solver_ = std::make_unique<NewtonSolver>(circuit_, opts);
    solver_opts_ = opts;
    regime_ = FactorRegime::none;
  } else {
    solver_->retune(opts);
  }
  return *solver_;
}

void AnalysisEngine::enter_regime(NewtonSolver& solver, FactorRegime regime) {
  // The DC matrix (Jf) and the transient matrix (Jf + a0*Jq) are different
  // numerical regimes; a pivot order recorded in one can silently degrade in
  // the other. Crossing the boundary pivots afresh — which also makes every
  // run bit-identical to the legacy fresh-solver-per-analysis path — while
  // same-regime reruns (warm sweeps) keep the recorded order.
  if (regime_ != regime) solver.refresh_pivot_order();
  regime_ = regime;
}

// ---------------------------------------------------------------------------
// DC
// ---------------------------------------------------------------------------

DcResult AnalysisEngine::run_dc(const DcOptions& opts) {
  const Deadline dl = Deadline::after_ms(opts.newton.timeout_ms, opts.newton.cancel);
  return run_dc_under(opts, dl);
}

DcResult AnalysisEngine::run_dc_under(const DcOptions& opts, const Deadline& dl) {
  DcResult out;
  out.x.assign(static_cast<std::size_t>(circuit_.unknown_count()), 0.0);

  // Static preflight verdict: an error-severity structural defect (voltage
  // loop, zero resistance, ...) makes every Newton stage below pointless —
  // report it as a structured failure instead of burning the rescue ladder.
  if (preflight_.has_errors()) {
    out.failure = make_failure(FailureKind::lint_rejected, "dc",
                               preflight_.error_summary());
    log_warn("solve_dc: " + out.failure.to_string());
    return out;
  }

  EvalCtx ctx;
  ctx.mode = AnalysisMode::dc;
  ctx.time = 0.0;

  // One solver serves every stage below, so the sparse symbolic
  // factorization is computed (at most) once for the whole analysis.
  NewtonSolver& solver = solver_for(opts.newton);
  enter_regime(solver, FactorRegime::dc);
  const SolverDeadlineGuard guard(solver, dl);
  const int sym0 = solver.symbolic_factorizations();
  const auto harvest_stats = [&] {
    out.used_sparse = solver.sparse_active();
    out.symbolic_factorizations = solver.symbolic_factorizations() - sym0;
  };

  // Verdict of the most recent stage, for the structured failure record.
  FailureKind last_kind = FailureKind::none;
  const char* last_stage = "plain newton";
  int rescue_attempts = 0;

  // 1. Plain Newton from the zero vector.
  {
    DVector x = out.x;
    const NewtonResult r = solver.solve(ctx, 0.0, {}, x);
    out.total_newton_iters += r.iterations;
    if (r.converged) {
      out.converged = true;
      out.x = std::move(x);
      harvest_stats();
      return out;
    }
    last_kind = r.failure;
  }

  // 2. gmin stepping: start with a heavy shunt and relax it geometrically,
  //    warm-starting each stage with the previous solution.
  if (opts.allow_gmin_stepping && !hard_stop(last_kind)) {
    ++rescue_attempts;
    last_stage = "gmin stepping";
    DVector x(static_cast<std::size_t>(circuit_.unknown_count()), 0.0);
    bool ok = true;
    // The floor keeps the loop finite when the user disables the shunt
    // entirely (gmin = 0 would otherwise never fall below 0 * 0.99).
    const double gmin_floor = std::max(opts.newton.gmin * 0.99, 1e-15);
    for (double gmin = 1e-2; gmin >= gmin_floor; gmin /= 10.0) {
      solver.set_gmin(gmin);
      const NewtonResult r = solver.solve(ctx, 0.0, {}, x);
      out.total_newton_iters += r.iterations;
      if (!r.converged) {
        ok = false;
        last_kind = r.failure;
        break;
      }
    }
    solver.set_gmin(opts.newton.gmin);
    if (ok) {
      out.converged = true;
      out.used_gmin_stepping = true;
      out.x = std::move(x);
      harvest_stats();
      return out;
    }
  }

  // 3. Source stepping: ramp all independent sources from 0 to 100 %.
  if (opts.allow_source_stepping && !hard_stop(last_kind)) {
    ++rescue_attempts;
    last_stage = "source stepping";
    DVector x(static_cast<std::size_t>(circuit_.unknown_count()), 0.0);
    bool ok = true;
    for (double scale = 0.1; scale <= 1.0 + 1e-12; scale += 0.1) {
      EvalCtx sctx = ctx;
      sctx.source_scale = scale;
      const NewtonResult r = solver.solve(sctx, 0.0, {}, x);
      out.total_newton_iters += r.iterations;
      if (!r.converged) {
        ok = false;
        last_kind = r.failure;
        break;
      }
    }
    if (ok) {
      out.converged = true;
      out.used_source_stepping = true;
      out.x = std::move(x);
      harvest_stats();
      return out;
    }
  }

  harvest_stats();
  const std::string detail =
      hard_stop(last_kind) ? std::string("stopped during ") + last_stage
                           : std::string("no convergence (last stage: ") + last_stage + ")";
  out.failure = make_failure(last_kind, "dc", detail,
                             std::numeric_limits<double>::quiet_NaN(),
                             out.total_newton_iters, rescue_attempts);
  log_warn("solve_dc: " + out.failure.to_string());
  return out;
}

OpResult AnalysisEngine::run_op(const DcOptions& opts) {
  const DcResult dc = run_dc(opts);
  OpResult out;
  out.converged = dc.converged;
  out.x = dc.x;
  out.newton_iterations = dc.total_newton_iters;
  out.used_sparse = dc.used_sparse;
  out.symbolic_factorizations = dc.symbolic_factorizations;
  out.used_gmin_stepping = dc.used_gmin_stepping;
  out.used_source_stepping = dc.used_source_stepping;
  out.failure = dc.failure;
  return out;
}

// ---------------------------------------------------------------------------
// Transient
// ---------------------------------------------------------------------------

namespace {

/// Integrator coefficients for d q / d t ~= a0*q(x_{n+1}) + hist and for
/// device-internal integrals s = s_prev + c0*e_prev + c1*e. For gear2 the
/// history is two-deep: hist = a1*q_n + a2*q_{n-1} (variable-step BDF2).
struct StepCoeffs {
  double a0;
  double a1 = 0.0;  ///< gear2 only
  double a2 = 0.0;  ///< gear2 only
  double c0;
  double c1;
};

StepCoeffs coeffs(IntegMethod m, double h, double h_prev) {
  switch (m) {
    case IntegMethod::backward_euler:
      return {1.0 / h, 0.0, 0.0, 0.0, h};
    case IntegMethod::trapezoidal:
      return {2.0 / h, 0.0, 0.0, h / 2.0, h / 2.0};
    case IntegMethod::gear2: {
      // Variable-step BDF2 from the Lagrange derivative at t_{n+1} over
      // {t_{n+1}, t_n = t_{n+1}-h, t_{n-1} = t_{n+1}-h-h_prev}.
      const double hp = h_prev > 0.0 ? h_prev : h;
      const double a0 = (2.0 * h + hp) / (h * (h + hp));
      const double a1 = -(h + hp) / (h * hp);
      const double a2 = h / (hp * (h + hp));
      // Device-internal integ() states get the BE formula (order 1): their
      // two-deep history lives in the analysis, not in the devices.
      return {a0, a1, a2, 0.0, h};
    }
  }
  return {1.0 / h, 0.0, 0.0, 0.0, h};
}

}  // namespace

TranResult AnalysisEngine::run_tran(const TranOptions& opts) {
  TranResult out;
  const std::size_t n = static_cast<std::size_t>(circuit_.unknown_count());

  // Injected allocation failure: exercises the sweep runner's exception
  // isolation boundary (FailureKind::alloc_failure).
  if (USYS_FAULT_POINT("engine.alloc")) throw std::bad_alloc();

  // One deadline budgets the WHOLE transient: initial operating point plus
  // the stepping loop (the dc options' own budget fields are ignored).
  const Deadline dl = Deadline::after_ms(opts.newton.timeout_ms, opts.newton.cancel);

  // --- Initial operating point --------------------------------------------
  DcOptions dc_opts = opts.dc;
  dc_opts.newton.timeout_ms = 0.0;
  dc_opts.newton.cancel = nullptr;
  const DcResult dc = run_dc_under(dc_opts, dl);
  out.used_gmin_stepping = dc.used_gmin_stepping;
  out.used_source_stepping = dc.used_source_stepping;
  if (!dc.converged) {
    out.failure = dc.failure;
    out.failure.analysis = "tran";
    out.failure.time = 0.0;
    out.failure.detail = "initial operating point: " + out.failure.detail;
    out.error = out.failure.to_string();
    log_warn(out.error);
    return out;
  }
  out.total_newton_iters += dc.total_newton_iters;

  DVector x = dc.x;
  for (const auto& dev : circuit_.devices()) dev->start_transient(x);

  // --- Breakpoints ----------------------------------------------------------
  std::vector<double> breaks;
  for (const auto& dev : circuit_.devices()) dev->breakpoints(breaks);
  breaks.push_back(opts.tstop);
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end(),
                           [](double a, double b) { return std::abs(a - b) < 1e-15; }),
               breaks.end());

  const double dt_init = opts.dt_init > 0 ? opts.dt_init : opts.tstop / 1000.0;
  const double dt_min = opts.dt_min > 0 ? opts.dt_min : opts.tstop * 1e-12;
  const double dt_max = opts.dt_max > 0 ? opts.dt_max : opts.tstop / 50.0;

  NewtonSolver& solver = solver_for(opts.newton);
  enter_regime(solver, FactorRegime::transient);
  const SolverDeadlineGuard guard(solver, dl);
  const int sym0 = solver.symbolic_factorizations();
  const auto harvest_stats = [&] {
    out.used_sparse = solver.sparse_active();
    out.symbolic_factorizations = solver.symbolic_factorizations() - sym0;
  };
  // Every early exit below carries a structured verdict; fail() renders the
  // legacy error string from it so existing log consumers see one line.
  const auto fail = [&](FailureKind kind, std::string detail, double at_t) {
    out.failure = make_failure(kind, "tran", std::move(detail), at_t,
                               out.total_newton_iters);
    out.error = out.failure.to_string();
    log_warn(out.error);
    harvest_stats();
  };

  // Harvest q at the DC point so the first step's history is consistent
  // (value-only stamp: the Jacobians are not needed between steps).
  DVector f(n), q(n);
  {
    EvalCtx ctx;
    ctx.mode = AnalysisMode::dc;
    solver.stamp_values(ctx, x, f, q);
  }
  DVector q_prev = q;
  DVector q_prev2 = q;  // q at t_{n-1}, for gear2
  DVector qdot_prev(n, 0.0);

  out.time.push_back(0.0);
  out.x.push_back(x);

  double t = 0.0;
  double h = dt_init;
  DVector x_prev = x;        // solution at t_{n-1} (for the predictor)
  double h_prev = 0.0;
  bool have_two_points = false;

  const DVector& abstol = circuit_.abstol();

  long attempted_steps = 0;

  while (t < opts.tstop - 1e-15) {
    // Step-ceiling and deadline polls at the step boundary: a budgeted or
    // bounded run always ends with a structured verdict, never a silent
    // truncation and never a hang.
    if (opts.max_steps > 0 && ++attempted_steps > opts.max_steps) {
      fail(FailureKind::max_steps_exceeded,
           str_format("step ceiling (%ld attempted steps) hit", opts.max_steps), t);
      return out;
    }
    if (dl.active() && dl.expired()) {
      fail(dl.exceeded_kind(), "deadline expired at step boundary", t);
      return out;
    }
    h = std::min(h, dt_max);
    h = std::max(h, dt_min);
    // Land exactly on the next breakpoint (waveform corner or tstop).
    for (double b : breaks) {
      if (b > t + 1e-15) {
        if (t + h > b - 1e-15) h = b - t;
        break;
      }
    }
    const double t_new = t + h;

    // First step after DC (or after a breakpoint) uses backward Euler: the
    // multistep history (qdot_prev / q_prev2) is unknown or discontinuous.
    IntegMethod method = opts.method;
    if (!have_two_points && method != IntegMethod::backward_euler)
      method = IntegMethod::backward_euler;

    const StepCoeffs sc = coeffs(method, h, h_prev);
    DVector hist(n);
    for (std::size_t i = 0; i < n; ++i) {
      switch (method) {
        case IntegMethod::trapezoidal:
          hist[i] = -sc.a0 * q_prev[i] - qdot_prev[i];
          break;
        case IntegMethod::gear2:
          hist[i] = sc.a1 * q_prev[i] + sc.a2 * q_prev2[i];
          break;
        case IntegMethod::backward_euler:
          hist[i] = -sc.a0 * q_prev[i];
          break;
      }
    }

    EvalCtx ctx;
    ctx.mode = AnalysisMode::transient;
    ctx.time = t_new;
    ctx.integ_c0 = sc.c0;
    ctx.integ_c1 = sc.c1;

    // Predictor: linear extrapolation (also the reference for LTE).
    DVector x_new = x;
    if (have_two_points && h_prev > 0.0) {
      const double r = h / h_prev;
      for (std::size_t i = 0; i < n; ++i) x_new[i] = x[i] + (x[i] - x_prev[i]) * r;
    }

    const NewtonResult nr = solver.solve(ctx, sc.a0, hist, x_new);
    out.total_newton_iters += nr.iterations;
    if (hard_stop(nr.failure)) {
      // Do NOT halve the step on a timeout/cancel verdict — the solve did
      // not fail numerically, the budget ran out; retrying smaller would
      // burn the remaining budget on a doomed bisection.
      fail(nr.failure, "deadline expired in Newton solve", t);
      return out;
    }

    bool accept = nr.converged;
    double lte_ratio = 0.0;
    if (accept && opts.adaptive && have_two_points) {
      // LTE proxy: corrector-vs-predictor distance, weighted per unknown.
      // Branch flows are excluded: they are algebraic outputs and ring
      // harmlessly under trapezoidal integration (A-stable, not L-stable),
      // which would otherwise put a floor under the ratio and jam the
      // controller.
      const std::size_t n_lte = static_cast<std::size_t>(circuit_.node_count());
      for (std::size_t i = 0; i < n_lte; ++i) {
        const double pred = x[i] + (h_prev > 0 ? (x[i] - x_prev[i]) * (h / h_prev) : 0.0);
        const double tol =
            opts.lte_reltol * std::max(std::abs(x_new[i]), std::abs(x[i])) + abstol[i];
        lte_ratio = std::max(lte_ratio, std::abs(x_new[i] - pred) / tol);
      }
      if (lte_ratio > 10.0) accept = false;  // gross violation: redo smaller
    }

    if (!accept) {
      ++out.rejected_steps;
      log_debug(str_format("transient: reject at t=%.6e h=%.3e (%s, lte=%.3g, newton_iters=%d)",
                           t, h, nr.converged ? "lte" : "newton", lte_ratio,
                           nr.iterations));
      h *= 0.5;
      if (h < dt_min) {
        fail(FailureKind::step_underflow,
             str_format("h fell below dt_min=%.3e after %s reject", dt_min,
                        nr.converged ? "lte" : "newton"),
             t);
        return out;
      }
      continue;
    }

    // Commit: harvest q(x_new), update integrator history, device states.
    solver.stamp_values(ctx, x_new, f, q);
    DVector qdot(n);
    for (std::size_t i = 0; i < n; ++i) qdot[i] = sc.a0 * q[i] + hist[i];
    q_prev2 = q_prev;
    q_prev = q;
    qdot_prev = qdot;

    AcceptCtx actx;
    actx.time = t_new;
    actx.integ_c0 = sc.c0;
    actx.integ_c1 = sc.c1;
    actx.x = &x_new;
    for (const auto& dev : circuit_.devices()) dev->accept(actx);

    x_prev = x;
    h_prev = h;
    x = x_new;
    t = t_new;
    have_two_points = true;

    // Integration restart at waveform corners: the trapezoidal history
    // derivative (qdot_prev) is discontinuous there, so the next step must
    // fall back to backward Euler with a fresh predictor (matches SPICE's
    // breakpoint handling). Without this the corner step rejects forever.
    for (double b : breaks) {
      if (std::abs(t - b) < 1e-13) {
        have_two_points = false;
        qdot_prev.assign(n, 0.0);
        h = std::min(h, dt_init);
        break;
      }
    }

    out.time.push_back(t);
    out.x.push_back(x);

    // Promote warned-once HDL ASSERT firings into a structured failure when
    // asked: the offending point is kept (pushed above) so a post-mortem
    // sees the state that violated the boundary condition.
    if (opts.fail_on_assert) {
      int violations = 0;
      for (const auto& dev : circuit_.devices()) violations += dev->assert_violations();
      if (violations > 0) {
        fail(FailureKind::assert_violation,
             str_format("%d ASSERT site(s) fired", violations), t);
        return out;
      }
    }

    if (opts.adaptive) {
      // Step-size controller: target lte_ratio ~ 0.5, second-order method.
      double grow = 2.0;
      if (lte_ratio > 1e-12) grow = 0.9 * std::pow(0.5 / lte_ratio, 1.0 / 3.0);
      grow = std::clamp(grow, 0.2, 2.0);
      h *= grow;
    } else {
      h = dt_init;
    }
  }

  out.ok = true;
  harvest_stats();
  return out;
}

// ---------------------------------------------------------------------------
// AC
// ---------------------------------------------------------------------------

AcResult AnalysisEngine::run_ac(const AcOptions& opts) {
  AcResult out;
  const std::size_t n = static_cast<std::size_t>(circuit_.unknown_count());

  // One deadline budgets the operating point AND the frequency sweep.
  const Deadline dl = Deadline::after_ms(opts.dc.newton.timeout_ms, opts.dc.newton.cancel);
  const auto fail = [&](FailureKind kind, std::string detail, double at_f) {
    out.failure = make_failure(kind, "ac", std::move(detail), at_f);
    out.error = out.failure.to_string();
    log_warn(out.error);
  };

  DcOptions dc_opts = opts.dc;
  dc_opts.newton.timeout_ms = 0.0;
  dc_opts.newton.cancel = nullptr;
  const DcResult dc = run_dc_under(dc_opts, dl);
  if (!dc.converged) {
    out.failure = dc.failure;
    out.failure.analysis = "ac";
    out.failure.detail = "operating point: " + out.failure.detail;
    out.error = out.failure.to_string();
    log_warn(out.error);
    return out;
  }

  // Linearize once at the operating point.
  NewtonSolver& solver = solver_for(opts.dc.newton);
  DVector f(n), q(n);
  DMatrix jf, jq;
  EvalCtx ctx;
  ctx.mode = AnalysisMode::dc;
  if (solver.sparse_active()) {
    solver.assemble_sparse(ctx, dc.x, f, q);
  } else {
    solver.stamp(ctx, dc.x, f, q, jf, jq);
  }

  // Complex excitation vector from the devices' AC sources.
  ZVector rhs(n, {0.0, 0.0});
  for (const auto& dev : circuit_.devices()) dev->ac_rhs(rhs);

  // Frequency grid.
  std::vector<double> freqs;
  if (opts.sweep == SweepKind::linear) {
    const int m = std::max(2, opts.points);
    for (int i = 0; i < m; ++i)
      freqs.push_back(opts.f_start +
                      (opts.f_stop - opts.f_start) * static_cast<double>(i) / (m - 1));
  } else {
    const double decades = std::log10(opts.f_stop / opts.f_start);
    const int total = std::max(2, static_cast<int>(std::ceil(decades * opts.points)) + 1);
    for (int i = 0; i < total; ++i)
      freqs.push_back(opts.f_start *
                      std::pow(10.0, decades * static_cast<double>(i) / (total - 1)));
  }

  if (solver.sparse_active()) {
    // Sparse sweep: (Jf + jw Jq) shares the real pattern, so the complex LU
    // runs its symbolic factorization once and numerically refactors per
    // frequency point. solve_threads applies here too (same bit-identity
    // guarantee as the real path).
    const MnaPattern& pattern = *solver.pattern();
    const std::vector<double>& jfv = solver.sparse_jf();
    const std::vector<double>& jqv = solver.sparse_jq();
    ZSparseLu zlu;
    zlu.analyze(pattern.size(), pattern.row_ptr(), pattern.col_idx(),
                opts.dc.newton.ordering);
    const int solve_threads = ThreadPool::resolve_threads(opts.dc.newton.solve_threads);
    const int refactor_threads =
        ThreadPool::resolve_threads(opts.dc.newton.refactor_threads);
    // Borrow the solver's pool (sized >= every thread request that exceeds
    // 1) instead of spawning a second one per run_ac call.
    if ((solve_threads > 1 || refactor_threads > 1) && solver.shared_pool() != nullptr)
      zlu.set_parallel(solver.shared_pool(), solve_threads);
    if (refactor_threads > 1) zlu.set_refactor_parallel(refactor_threads);
    if (dl.active()) zlu.set_deadline(&dl);
    // When the solver's island/Schur plan is live, (Jf + jw Jq) inherits the
    // real pattern's structure, so the complex sweep partitions the same
    // way; a singular block at any frequency drops the whole sweep back to
    // the monolithic zlu (same policy as NewtonSolver).
    std::unique_ptr<ZPartitionedLu> zplu;
    if (solver.partition_active()) {
      zplu = std::make_unique<ZPartitionedLu>();
      zplu->analyze(solver.partition_plan(), pattern.size(), pattern.row_ptr(),
                    pattern.col_idx(), opts.dc.newton.ordering);
      if (solver.shared_pool() != nullptr)
        zplu->set_parallel(solver.shared_pool(),
                           std::max(solve_threads, refactor_threads));
      if (dl.active()) zplu->set_deadline(&dl);
    }
    std::vector<std::complex<double>> avals(pattern.nonzeros());
    for (double fr : freqs) {
      if (dl.active() && dl.expired()) {
        fail(dl.exceeded_kind(), "deadline expired in frequency sweep", fr);
        return out;
      }
      const std::complex<double> jw(0.0, 2.0 * kPi * fr);
      for (std::size_t k = 0; k < avals.size(); ++k)
        avals[k] = std::complex<double>(jfv[k], 0.0) + jw * jqv[k];
      ZVector b = rhs;
      try {
        if (zplu) {
          try {
            zplu->factor(avals);
            zplu->solve(b);
          } catch (const SingularMatrixError&) {
            log_info("partition: singular block in AC sweep, falling back to the "
                     "monolithic path");
            zplu.reset();
            b = rhs;
            zlu.factor(avals);
            zlu.solve(b);
          }
        } else {
          zlu.factor(avals);
          zlu.solve(b);
        }
      } catch (const SingularMatrixError&) {
        fail(FailureKind::singular_matrix,
             str_format("singular system at f=%.6e Hz", fr), fr);
        return out;
      } catch (const DeadlineError& e) {
        fail(e.kind(), "deadline expired in factor/solve", fr);
        return out;
      }
      out.freq.push_back(fr);
      out.x.push_back(std::move(b));
    }
    out.used_sparse = true;
    out.symbolic_factorizations =
        zplu ? zplu->symbolic_factorizations() : zlu.symbolic_factorizations();
  } else {
    for (double fr : freqs) {
      if (dl.active() && dl.expired()) {
        fail(dl.exceeded_kind(), "deadline expired in frequency sweep", fr);
        return out;
      }
      const std::complex<double> jw(0.0, 2.0 * kPi * fr);
      ZMatrix a(n, n);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
          a(r, c) = std::complex<double>(jf(r, c), 0.0) + jw * jq(r, c);
        }
      }
      ZVector b = rhs;
      try {
        lu_solve(a, b);
      } catch (const SingularMatrixError&) {
        fail(FailureKind::singular_matrix,
             str_format("singular system at f=%.6e Hz", fr), fr);
        return out;
      }
      out.freq.push_back(fr);
      out.x.push_back(std::move(b));
    }
  }
  out.ok = true;
  return out;
}

}  // namespace usys::spice
