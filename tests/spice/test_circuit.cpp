// Circuit graph bookkeeping: nodes, natures, devices, binding.
#include <gtest/gtest.h>

#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys::spice {
namespace {

TEST(Circuit, GroundAliases) {
  Circuit ckt;
  EXPECT_EQ(ckt.add_node("0", Nature::electrical), Circuit::kGround);
  EXPECT_EQ(ckt.add_node("gnd", Nature::electrical), Circuit::kGround);
  EXPECT_EQ(ckt.node("0"), Circuit::kGround);
}

TEST(Circuit, NodeReuseSameNature) {
  Circuit ckt;
  const int a = ckt.add_node("a", Nature::electrical);
  EXPECT_EQ(ckt.add_node("a", Nature::electrical), a);
  EXPECT_EQ(ckt.node("a"), a);
}

TEST(Circuit, NodeNatureConflictThrows) {
  Circuit ckt;
  ckt.add_node("a", Nature::electrical);
  EXPECT_THROW(ckt.add_node("a", Nature::mechanical_translation), CircuitError);
}

TEST(Circuit, UnknownNodeLookupThrows) {
  Circuit ckt;
  EXPECT_THROW((void)ckt.node("missing"), CircuitError);
}

TEST(Circuit, DuplicateDeviceNameThrows) {
  Circuit ckt;
  const int a = ckt.add_node("a", Nature::electrical);
  ckt.add<Resistor>("R1", a, Circuit::kGround, 1.0);
  EXPECT_THROW(ckt.add<Resistor>("R1", a, Circuit::kGround, 2.0), CircuitError);
}

TEST(Circuit, BranchUnknownsAppendAfterNodes) {
  Circuit ckt;
  const int a = ckt.add_node("a", Nature::electrical);
  const int b = ckt.add_node("b", Nature::electrical);
  auto& vs = ckt.add<VSource>("V1", a, Circuit::kGround, 1.0);
  auto& ind = ckt.add<Inductor>("L1", b, Circuit::kGround, 1e-3);
  ckt.bind_all();
  EXPECT_EQ(ckt.node_count(), 2);
  EXPECT_EQ(ckt.unknown_count(), 4);
  EXPECT_EQ(vs.branch(), 2);
  EXPECT_EQ(ind.branch(), 3);
}

TEST(Circuit, AbstolSizedByNature) {
  Circuit ckt;
  ckt.add_node("e", Nature::electrical);
  ckt.add_node("m", Nature::mechanical_translation);
  ckt.bind_all();
  EXPECT_DOUBLE_EQ(ckt.abstol()[0], effort_abstol(Nature::electrical));
  EXPECT_DOUBLE_EQ(ckt.abstol()[1], effort_abstol(Nature::mechanical_translation));
}

TEST(Circuit, AddAfterBindThrows) {
  Circuit ckt;
  const int a = ckt.add_node("a", Nature::electrical);
  ckt.add<Resistor>("R1", a, Circuit::kGround, 1.0);
  ckt.bind_all();
  EXPECT_THROW(ckt.add_node("late", Nature::electrical), CircuitError);
  EXPECT_THROW(ckt.add<Resistor>("R2", a, Circuit::kGround, 1.0), CircuitError);
}

TEST(Circuit, FindDevice) {
  Circuit ckt;
  const int a = ckt.add_node("a", Nature::electrical);
  ckt.add<Resistor>("R1", a, Circuit::kGround, 1.0);
  EXPECT_NE(ckt.find_device("R1"), nullptr);
  EXPECT_EQ(ckt.find_device("R2"), nullptr);
}

TEST(Circuit, InvalidElementValuesThrow) {
  Circuit ckt;
  const int a = ckt.add_node("a", Nature::electrical);
  EXPECT_THROW(ckt.add<Resistor>("R1", a, Circuit::kGround, 0.0), std::invalid_argument);
  EXPECT_THROW(ckt.add<Capacitor>("C1", a, Circuit::kGround, -1.0), std::invalid_argument);
  EXPECT_THROW(ckt.add<Inductor>("L1", a, Circuit::kGround, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace usys::spice
