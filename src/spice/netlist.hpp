// SPICE-style netlist front end.
//
// The paper instantiates transducer macro-models "in a netlist with
// electronics"; this parser provides that workflow. Grammar (one card per
// line, '*' or ';' comments, case-insensitive keywords, SPICE engineering
// suffixes):
//
//   .node <name> <nature>            declare a non-electrical node
//   V<id> n+ n- <dc> | PULSE(...) | SIN(...) | PWL(...)  [AC <mag> [<phase>]]
//   I<id> n+ n- <same waveforms>
//   R<id> a b <ohms>
//   C<id> a b <farads>
//   L<id> a b <henries>
//   D<id> a k [Is] [n]               junction diode
//   E<id> o+ o- c+ c- <gain>         VCVS
//   G<id> o+ o- c+ c- <gm>           VCCS
//   F<id> o+ o- <vsrc> <gain>        CCCS
//   H<id> o+ o- <vsrc> <r>           CCVS
//   X<id> <pins...> <TYPE> [k=v ...] extension devices (registered factories):
//       built-in types: MASS m=<kg>; SPRING k=<N/m>; DAMPER alpha=<Ns/m>;
//       FORCE f=<N>|waveform; XFMR n=<ratio>; GYR g=<S>; INTEG [x0=<v>]
//       (the transducers of the paper are registered by usys::core)
//   .array <count> <device card>     repeat construct: expands the card
//       <count> times with {i}, {i+N}, {i-N} placeholders replaced by the
//       element index (0-based) in names, node names, and parameters, e.g.
//         .array 1000 XT{i} drive 0 v{i} 0 ETRANSV a=1e-4 d=2e-6
//         .array 999  XK{i} v{i} v{i+1} SPRING k=2.5
//       (usys::core also registers a TRANSARRAY macro card that emits a
//       whole transducer/mass/spring/damper array from a single X card)
//   .options [method=be|trap|gear] [dtmax=<s>] [reltol=<x>] [<strkey>=<val>]
//       string-valued keys must be registered (register_string_option);
//       usys::core registers `hdl=ast|bytecode|codegen` — the execution mode
//       HDL X cards after this point instantiate with (see docs/hdl.md)
//   .op | .tran <dtinit> <tstop> | .ac dec|lin <pts> <f0> <f1>
//   .end
//
// X-card parameters whose key is registered as string-valued
// (register_string_param; usys::core registers `mode` for the HDL cards)
// are passed to the factory verbatim (XDeviceArgs::sparams). Every other
// parameter value must parse as a SPICE number — typos stay hard errors.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/stats.hpp"
#include "spice/waveform.hpp"

namespace usys::spice {

class NetlistError : public std::runtime_error {
 public:
  NetlistError(int line, const std::string& what)
      : std::runtime_error("netlist line " + std::to_string(line) + ": " + what),
        line_(line) {}
  int line() const noexcept { return line_; }

 private:
  int line_;
};

/// A requested analysis card.
struct AnalysisCard {
  enum class Kind { op, tran, ac } kind = Kind::op;
  TranOptions tran;
  AcOptions ac;
};

/// Parse result: the built circuit plus the requested analyses.
struct Netlist {
  std::unique_ptr<Circuit> circuit;
  std::vector<AnalysisCard> analyses;
  std::string title;
};

/// Key/value parameters of an X card (keys lowercased).
using ParamMap = std::map<std::string, double>;

/// String-valued settings: registered `.options` keys plus non-numeric X-card
/// parameters (keys lowercased in both cases).
using StringMap = std::map<std::string, std::string>;

/// Context handed to X-device factories.
struct XDeviceArgs {
  std::string name;                 ///< full device name ("XT1")
  std::vector<std::string> pins;    ///< pin node *names* in card order
  ParamMap params;
  StringMap sparams;                ///< non-numeric k=v card parameters
  Circuit* circuit = nullptr;
  int line = 0;
  /// String `.options` in effect at this card (registered keys only; parser
  /// defaults merged in). Never null during factory dispatch.
  const StringMap* options = nullptr;
  /// Resolves a pin name to a node id, creating it with `nature` if new.
  std::function<int(const std::string&, Nature)> node;
};

/// Factory signature: construct & add the device to args.circuit.
using XDeviceFactory = std::function<void(XDeviceArgs&)>;

class NetlistParser {
 public:
  NetlistParser();

  /// Registers an X-card TYPE (uppercased). Later registrations override.
  void register_xdevice(const std::string& type, XDeviceFactory factory);

  /// Declares a string-valued `.options` key (unregistered keys still throw).
  /// `validate` (optional) vets the value at parse time.
  using OptionValidator = std::function<bool(const std::string&)>;
  void register_string_option(const std::string& key, OptionValidator validate = {});

  /// Declares a string-valued X-card parameter key. Unregistered keys keep
  /// the strict numeric contract (malformed values are parse errors), so a
  /// typo like `er=one` can never silently fall through to a default.
  void register_string_param(const std::string& key);

  /// Presets a string option before parsing (e.g. usim --hdl-mode). A later
  /// `.options` card with the same key overrides it. The key must be
  /// registered; the value goes through its validator.
  void set_option(const std::string& key, const std::string& value);

  /// Parses netlist text; throws NetlistError with a line number on failure.
  Netlist parse(const std::string& text);

 private:
  std::map<std::string, XDeviceFactory> xdevices_;
  std::map<std::string, OptionValidator> string_option_keys_;
  std::set<std::string> string_param_keys_;
  StringMap default_options_;
};

/// Helper for factories/tests: fetch a required parameter.
double require_param(const XDeviceArgs& args, const std::string& key);
/// Fetch with default.
double param_or(const XDeviceArgs& args, const std::string& key, double fallback);
/// String parameter with default: the card's own `key=value` wins, then the
/// `.options` value in effect, then `fallback`.
std::string sparam_or(const XDeviceArgs& args, const std::string& key,
                      const std::string& fallback);

/// Statistical-sweep pre-passes (docs/sweeps.md). Both scan the RAW netlist
/// text — before {name} parameter substitution, which is why they cannot
/// live inside parse() — and throw NetlistError on malformed cards;
/// parse() itself treats the cards as inert.
///
/// `.param <name> <value>` or `.param <name> dist=normal(mu,sigma) |
/// uniform(lo,hi) | corner(v1,v2,...)`; a later card overrides an earlier
/// one with the same name.
std::vector<ParamDist> parse_param_dists(const std::string& text);

/// `.measure <label> <metric> [min=<v>] [max=<v>]` yield bounds (at least
/// one bound required).
std::vector<MeasureSpec> parse_measures(const std::string& text);

}  // namespace usys::spice
