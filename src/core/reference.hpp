// Closed-form reference expressions: Tables 2 and 3 of the paper.
//
// These are the oracle against which the behavioral devices, the symbolic
// energy derivation, the HDL-AT models and the FE extraction are all
// validated. Sign conventions (see DESIGN.md "Key numerical design choices"):
//  * x is the displacement of the free plate, positive = gap (d+x) opening
//    for (a)/(c), positive = overlap (l-x) shrinking for (b);
//  * "force" below is the force *delivered to the free plate* — the quantity
//    the paper's Table 3 prints (negative = attraction);
//  * the flow *absorbed* at the mechanical pin of a conservative two-port is
//    dW(state,x)/dx = -force_on_plate; both are exposed.
#pragma once

#include "common/constants.hpp"

namespace usys::core {

/// Geometry/material parameters of the four transducers of Fig. 2.
/// Only the fields a given transducer uses need to be set.
struct TransducerGeometry {
  double area = 1e-4;       ///< A: active cross-section [m^2] (a, c)
  double gap = 0.15e-3;     ///< d: rest gap [m] (a, c) or dielectric gap (b)
  double eps_r = 1.0;       ///< relative permittivity (a, b)
  double depth = 1e-3;      ///< h: structure depth [m] (b)
  double length = 1e-3;     ///< l: overlap length at rest [m] (b)
  int turns = 100;          ///< N: coil turns (c, d)
  double radius = 1e-3;     ///< r: coil radius [m] (d)
  double b_field = 0.5;     ///< B: radial magnet field [T] (d)
  double eps0 = kEps0Paper; ///< vacuum permittivity (paper's rounded value)
  double mu0 = kMu0Classic; ///< vacuum permeability
};

// --- Table 2: input impedances (C or L as a function of x) -----------------

/// (a) transverse electrostatic: C(x) = eps0*er*A/(d+x).
double capacitance_transverse(const TransducerGeometry& g, double x);
/// (b) parallel electrostatic: C(x) = eps0*er*h*(l-x)/d.
double capacitance_parallel(const TransducerGeometry& g, double x);
/// (c) electromagnetic: L(x) = mu0*A*N^2 / (2*(d+x)).
double inductance_electromagnetic(const TransducerGeometry& g, double x);
/// (d) electrodynamic: L = mu0*N^2*r/2 (position independent).
double inductance_electrodynamic(const TransducerGeometry& g);

// --- Table 2: internal energies --------------------------------------------

/// (a) W = eps0*er*A*V^2 / (2*(d+x)).
double energy_transverse(const TransducerGeometry& g, double v, double x);
/// (b) W = eps0*er*h*(l-x)*V^2 / (2*d).
double energy_parallel(const TransducerGeometry& g, double v, double x);
/// (c) W = mu0*A*N^2*i^2 / (4*(d+x)).
double energy_electromagnetic(const TransducerGeometry& g, double i, double x);
/// (d) W = L i^2 / 2 with L = mu0*N^2*r/2.
double energy_electrodynamic(const TransducerGeometry& g, double i);

// --- Table 3: port efforts ---------------------------------------------------

/// (a) force on free plate: F = -eps0*er*A*V^2 / (2*(d+x)^2).
double force_transverse(const TransducerGeometry& g, double v, double x);
/// (b) force on free plate: F = -eps0*er*h*V^2 / (2*d).
double force_parallel(const TransducerGeometry& g, double v);
/// (c) force on armature: F = -mu0*A*N^2*i^2 / (4*(d+x)^2).
double force_electromagnetic(const TransducerGeometry& g, double i, double x);
/// (d) Lorentz force on coil: F = 2*pi*N*r*B*i (transduction T = 2*pi*N*r*B).
double force_electrodynamic(const TransducerGeometry& g, double i);
/// (d) transduction factor T = 2*pi*N*r*B [N/A] = [V*s/m].
double transduction_electrodynamic(const TransducerGeometry& g);

// --- Fig. 3 / Table 4: the resonator system --------------------------------

/// Parameters of the transducer + mechanical resonator system of Fig. 3,
/// defaulted to Table 4 of the paper.
struct ResonatorParams {
  TransducerGeometry geom{};      // A = 1e-4, d = 0.15e-3, er = 1 (Table 4)
  double mass = 1.0e-4;           ///< m [kg]
  double stiffness = 200.0;       ///< k [N/m]
  double damping = 40e-3;         ///< alpha [N*s/m]
  double v_bias = 10.0;           ///< V0 [V], the linearization point
};

/// Static (quasi-static) displacement at drive voltage v: x* solving
/// k x = F(v, x). Solved by fixed-point/Newton iteration on the gap.
double static_displacement_transverse(const ResonatorParams& p, double v);

/// DC capacitance at the bias point: C0 = C(x0(v_bias)).
double bias_capacitance(const ResonatorParams& p);

/// Tangent transduction factor (Tilmans [1]): Gamma = eps*A*V0/(d+x0)^2,
/// the slope dF/dV at the bias point.
double gamma_tangent(const ResonatorParams& p);

/// Secant transduction factor: Gamma_sec = |F(V0,x0)| / V0 — the constant-
/// ratio coupling for which the *linear* circuit's static deflection matches
/// the non-linear model exactly at V0 (the convergence the paper's Fig. 5
/// shows at the 10 V linearization point when driving pulses from 0 V).
double gamma_secant(const ResonatorParams& p);

/// Undamped resonance [rad/s] and damping ratio of the mechanical resonator.
double omega0(const ResonatorParams& p);
double damping_ratio(const ResonatorParams& p);

/// Pull-in voltage of the transverse electrostatic transducer against its
/// spring: V_pi = sqrt(8 k d^3 / (27 eps0 er A)). Above it no static
/// equilibrium exists and the plate snaps in (classic MEMS result; the
/// behavioral model reproduces it, the linearized one cannot).
double pull_in_voltage(const ResonatorParams& p);

/// Pull-in displacement: the equilibrium ceases to exist at x = -d/3.
double pull_in_displacement(const ResonatorParams& p);

}  // namespace usys::core
