// Sweep checkpoint/resume (spice/checkpoint.hpp + SweepRunner fault
// tolerance): JSONL round-trips bit-identically, torn tails and foreign
// garbage are skipped, resume restores completed points and re-runs only the
// unfinished ones, shard files merge by concatenation, and retries escalate
// with an attempt counter.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "common/fault_inject.hpp"
#include "spice/checkpoint.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"
#include "spice/solver.hpp"
#include "spice/sweep.hpp"

namespace usys::spice {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override {
    fault::disarm_all();
    for (const auto& p : files_) std::remove(p.c_str());
  }

  /// A fresh path under the test temp dir, deleted on teardown.
  std::string temp_path(const std::string& name) {
    std::string p = ::testing::TempDir() + "usys_ckpt_" +
                    ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
                    name + ".jsonl";
    files_.push_back(p);
    return p;
  }

 private:
  std::vector<std::string> files_;
};

/// An arbitrary irrational-ish metric: enough floating-point structure that
/// "bit-identical after a decimal round-trip" is a real claim.
double metric_of(const SweepPoint& p) {
  return std::sin(p.value("a")) * 1e-7 + p.value("b") / 3.0;
}

// ---------------------------------------------------------------------------
// Line format
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, OkRecordRoundTripsBitIdentically) {
  SweepPoint point;
  point.params = {{"a", 1.0 / 3.0}, {"b", 1e-300}, {"c", -2.5e17}};
  SweepOutcome out;
  out.ok = true;
  out.attempts = 2;
  out.metrics = {{"m1", 0.1}, {"m2", std::nextafter(1.0, 2.0)}};
  out.error = "";
  const std::string line = checkpoint_line(7, point, out);

  CheckpointRecord rec;
  ASSERT_TRUE(parse_checkpoint_line(line, rec)) << line;
  EXPECT_EQ(rec.index, 7);
  EXPECT_TRUE(rec.outcome.ok);
  EXPECT_EQ(rec.outcome.attempts, 2);
  EXPECT_EQ(rec.point.params, point.params);    // exact doubles, not approx
  EXPECT_EQ(rec.outcome.metrics, out.metrics);
  EXPECT_TRUE(rec.outcome.failure.ok());        // no failure object for ok records
}

TEST_F(CheckpointTest, FailureRecordRoundTripsKindAndContext) {
  SweepPoint point;
  point.params = {{"k", 2.0}};
  SweepOutcome out;
  out.ok = false;
  out.attempts = 3;
  out.error = "weird \"quoted\"\nerror\twith\x01control";
  out.failure = make_failure(FailureKind::timeout, "tran", "detail \\ here", 1.25e-5, 7, 1);
  const std::string line = checkpoint_line(0, point, out);

  CheckpointRecord rec;
  ASSERT_TRUE(parse_checkpoint_line(line, rec)) << line;
  EXPECT_EQ(rec.outcome.error, out.error);
  EXPECT_EQ(rec.outcome.failure.kind, FailureKind::timeout);
  EXPECT_EQ(rec.outcome.failure.analysis, "tran");
  EXPECT_EQ(rec.outcome.failure.time, 1.25e-5);
  EXPECT_EQ(rec.outcome.failure.iteration, 7);
  EXPECT_EQ(rec.outcome.failure.rescue_attempts, 1);
  EXPECT_EQ(rec.outcome.failure.detail, "detail \\ here");
}

TEST_F(CheckpointTest, NanTimeWritesNullAndReadsBackNan) {
  SweepPoint point;
  point.params = {{"k", 1.0}};
  SweepOutcome out;
  out.ok = false;
  out.error = "x";
  out.failure = make_failure(FailureKind::newton_divergence, "dc");
  const std::string line = checkpoint_line(1, point, out);
  EXPECT_NE(line.find("\"time\":null"), std::string::npos);
  CheckpointRecord rec;
  ASSERT_TRUE(parse_checkpoint_line(line, rec));
  EXPECT_TRUE(std::isnan(rec.outcome.failure.time));
}

TEST_F(CheckpointTest, ParseRejectsMalformedLines) {
  CheckpointRecord rec;
  EXPECT_FALSE(parse_checkpoint_line("", rec));
  EXPECT_FALSE(parse_checkpoint_line("{\"i\":1,\"ok\":tr", rec));       // torn tail
  EXPECT_FALSE(parse_checkpoint_line("{\"ok\":true}", rec));            // no index
  EXPECT_FALSE(parse_checkpoint_line("{\"i\":1}trailing", rec));        // garbage after
  EXPECT_FALSE(parse_checkpoint_line("not json at all", rec));
  EXPECT_FALSE(parse_checkpoint_line(
      "{\"i\":1,\"failure\":{\"kind\":\"no-such-kind\"}}", rec));       // unknown kind
}

TEST_F(CheckpointTest, ParseIgnoresUnknownKeysForForwardCompatibility) {
  CheckpointRecord rec;
  ASSERT_TRUE(parse_checkpoint_line(
      "{\"i\":3,\"ok\":true,\"future\":{\"nested\":[1,\"x\",null,{}]},"
      "\"metrics\":[[\"m\",2]]}",
      rec));
  EXPECT_EQ(rec.index, 3);
  EXPECT_TRUE(rec.outcome.ok);
  ASSERT_EQ(rec.outcome.metrics.size(), 1u);
  EXPECT_EQ(rec.outcome.metrics[0].second, 2.0);
}

// ---------------------------------------------------------------------------
// File round-trip
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, LoadSkipsTornTailAndKeepsLastRecordPerIndex) {
  const std::string path = temp_path("file");
  SweepPoint p0;
  p0.params = {{"k", 0.0}};
  {
    CheckpointWriter writer(path);
    SweepOutcome fail_out;
    fail_out.ok = false;
    fail_out.error = "first try";
    fail_out.failure = make_failure(FailureKind::newton_divergence, "dc");
    writer.append(0, p0, fail_out);
    SweepOutcome ok_out;
    ok_out.ok = true;
    ok_out.metrics = {{"m", 42.0}};
    writer.append(0, p0, ok_out);  // re-run of the same point: must win
    writer.append(1, p0, ok_out);
  }
  {
    // A kill mid-write leaves a torn line; it must not poison the file.
    std::ofstream torn(path, std::ios::app);
    torn << "{\"i\":2,\"ok\":tr";
  }
  CheckpointData data;
  std::string err;
  ASSERT_TRUE(load_checkpoint(path, data, &err));
  EXPECT_NE(err.find("1 malformed"), std::string::npos);
  ASSERT_EQ(data.records.size(), 2u);
  EXPECT_TRUE(data.records.at(0).outcome.ok);  // the later ok record won
  EXPECT_EQ(data.records.at(0).outcome.metrics[0].second, 42.0);
  EXPECT_TRUE(data.records.at(1).outcome.ok);
}

TEST_F(CheckpointTest, LoadFailsOnlyOnUnreadableFile) {
  CheckpointData data;
  std::string err;
  EXPECT_FALSE(load_checkpoint(temp_path("missing"), data, &err));
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------------
// SweepRunner integration: checkpoint, resume, shard, retry
// ---------------------------------------------------------------------------

std::vector<SweepPoint> small_grid() {
  return sweep_grid({SweepAxis::linspace("a", 0.1, 0.9, 3),
                     SweepAxis::linspace("b", 1.0, 2.0, 2)});
}

TEST_F(CheckpointTest, ResumeRestoresCompletedPointsBitIdentically) {
  const std::string path = temp_path("resume");
  const auto grid = small_grid();
  std::atomic<int> runs{0};
  const auto job = [&runs](const SweepPoint& p, int) {
    ++runs;
    SweepOutcome o;
    o.ok = true;
    o.metrics = {{"m", metric_of(p)}};
    return o;
  };
  const SweepRunner runner(1);
  SweepOptions opts;
  opts.checkpoint_path = path;
  const auto first = runner.run(grid, job, opts);
  ASSERT_EQ(runs.load(), static_cast<int>(grid.size()));
  for (const auto& r : first) ASSERT_TRUE(r.ok);

  runs = 0;
  SweepOptions resume_opts;
  resume_opts.resume_path = path;
  const auto second = runner.run(grid, job, resume_opts);
  EXPECT_EQ(runs.load(), 0) << "all points were complete — nothing may re-run";
  for (std::size_t k = 0; k < grid.size(); ++k) {
    EXPECT_TRUE(second[k].restored);
    EXPECT_EQ(second[k].attempts, 0);
    // Bit-identical through the decimal journal (%.17g round-trip).
    EXPECT_EQ(second[k].metrics, first[k].metrics);
  }
}

TEST_F(CheckpointTest, ResumeRerunsOnlyFailedPoints) {
  const std::string path = temp_path("rerun");
  const auto grid = small_grid();
  const SweepRunner runner(1);
  SweepOptions opts;
  opts.checkpoint_path = path;
  // First pass: point 2 fails.
  runner.run(
      grid,
      [](const SweepPoint& p, int) {
        SweepOutcome o;
        if (p.value("a") > 0.45 && p.value("a") < 0.55) {  // the middle "a" value
          o.ok = false;
          o.error = "flaky";
          return o;
        }
        o.ok = true;
        o.metrics = {{"m", metric_of(p)}};
        return o;
      },
      opts);
  // Second pass: a healthy job, resuming. Only the two failed points
  // (a = 0.5, both b values) may run.
  std::atomic<int> runs{0};
  SweepOptions resume_opts;
  resume_opts.resume_path = path;
  const auto second = runner.run(
      grid,
      [&runs](const SweepPoint& p, int) {
        ++runs;
        SweepOutcome o;
        o.ok = true;
        o.metrics = {{"m", metric_of(p)}};
        return o;
      },
      resume_opts);
  EXPECT_EQ(runs.load(), 2);
  for (const auto& r : second) EXPECT_TRUE(r.ok);
  int restored = 0;
  for (const auto& r : second) restored += r.restored ? 1 : 0;
  EXPECT_EQ(restored, static_cast<int>(grid.size()) - 2);
}

TEST_F(CheckpointTest, ResumeRefusesForeignCheckpoints) {
  const std::string path = temp_path("foreign");
  const auto grid = small_grid();
  const SweepRunner runner(1);
  SweepOptions opts;
  opts.checkpoint_path = path;
  const auto ok_job = [](const SweepPoint& p, int) {
    SweepOutcome o;
    o.ok = true;
    o.metrics = {{"m", metric_of(p)}};
    return o;
  };
  runner.run(grid, ok_job, opts);

  SweepOptions resume_opts;
  resume_opts.resume_path = path;
  // Different parameter values at the same indices: wrong checkpoint.
  const auto other_grid = sweep_grid({SweepAxis::linspace("a", 5.0, 9.0, 3),
                                      SweepAxis::linspace("b", 1.0, 2.0, 2)});
  EXPECT_THROW(runner.run(other_grid, ok_job, resume_opts), std::runtime_error);
  // A smaller grid: recorded indices fall outside it.
  const auto tiny_grid = sweep_grid({SweepAxis::linspace("a", 0.1, 0.9, 1)});
  EXPECT_THROW(runner.run(tiny_grid, ok_job, resume_opts), std::runtime_error);
}

TEST_F(CheckpointTest, ShardOwnsPartitionsDeterministically) {
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(shard_owns(i, 0, 0));  // unsharded owns everything
    EXPECT_TRUE(shard_owns(i, 1, 1));
    int owners = 0;
    for (int k = 1; k <= 3; ++k) owners += shard_owns(i, k, 3) ? 1 : 0;
    EXPECT_EQ(owners, 1) << "index " << i << " must belong to exactly one of 3 shards";
  }
  EXPECT_TRUE(shard_owns(0, 1, 2));
  EXPECT_FALSE(shard_owns(1, 1, 2));
  EXPECT_TRUE(shard_owns(1, 2, 2));
}

TEST_F(CheckpointTest, ShardFilesMergeByConcatenation) {
  const std::string path1 = temp_path("shard1");
  const std::string path2 = temp_path("shard2");
  const std::string merged = temp_path("merged");
  const auto grid = small_grid();
  const SweepRunner runner(1);
  const auto job = [](const SweepPoint& p, int) {
    SweepOutcome o;
    o.ok = true;
    o.metrics = {{"m", metric_of(p)}};
    return o;
  };
  SweepOptions s1;
  s1.checkpoint_path = path1;
  s1.shard_index = 1;
  s1.shard_count = 2;
  const auto r1 = runner.run(grid, job, s1);
  SweepOptions s2;
  s2.checkpoint_path = path2;
  s2.shard_index = 2;
  s2.shard_count = 2;
  const auto r2 = runner.run(grid, job, s2);
  for (std::size_t k = 0; k < grid.size(); ++k) {
    EXPECT_NE(r1[k].skipped, r2[k].skipped) << "point " << k;
    EXPECT_EQ(r1[k].ok, !r1[k].skipped);
    EXPECT_EQ(r2[k].ok, !r2[k].skipped);
  }
  {
    // The documented merge procedure: cat shard1 shard2 > merged.
    std::ofstream out(merged, std::ios::binary);
    for (const auto& p : {path1, path2}) {
      std::ifstream in(p, std::ios::binary);
      out << in.rdbuf();
    }
  }
  std::atomic<int> runs{0};
  SweepOptions resume_opts;
  resume_opts.resume_path = merged;
  const auto full = runner.run(
      grid,
      [&runs](const SweepPoint&, int) {
        ++runs;
        return SweepOutcome{};
      },
      resume_opts);
  EXPECT_EQ(runs.load(), 0) << "the merged shards cover the whole grid";
  for (std::size_t k = 0; k < grid.size(); ++k) {
    EXPECT_TRUE(full[k].restored);
    const auto& src = r1[k].skipped ? r2[k] : r1[k];
    EXPECT_EQ(full[k].metrics, src.metrics);
  }
}

TEST_F(CheckpointTest, RetriesEscalateWithAttemptCounter) {
  std::vector<SweepPoint> grid(1);
  grid[0].params = {{"k", 1.0}};
  const SweepRunner runner(1);
  SweepOptions opts;
  opts.retries = 3;
  std::vector<int> seen_attempts;
  const auto results = runner.run(
      grid,
      [&seen_attempts](const SweepPoint&, int attempt) {
        seen_attempts.push_back(attempt);
        SweepOutcome o;
        o.ok = attempt >= 2;  // succeeds on the third try
        if (!o.ok) o.error = "not yet";
        return o;
      },
      opts);
  EXPECT_EQ(seen_attempts, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(results[0].ok);
  EXPECT_EQ(results[0].attempts, 3);
}

TEST_F(CheckpointTest, ExhaustedRetriesKeepTheLastStructuredFailure) {
  std::vector<SweepPoint> grid(1);
  grid[0].params = {{"k", 1.0}};
  const SweepRunner runner(1);
  SweepOptions opts;
  opts.retries = 2;
  const auto results = runner.run(
      grid,
      [](const SweepPoint&, int) -> SweepOutcome { throw std::runtime_error("boom"); },
      opts);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].attempts, 3);  // 1 + 2 retries
  EXPECT_EQ(results[0].error, "boom");
  EXPECT_EQ(results[0].failure.kind, FailureKind::internal_error);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: injected per-point failures, checkpoint, resume
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, InjectedPointFailureIsJournaledAndResumedExactly) {
  if (!fault::compiled_in()) GTEST_SKIP() << "needs -DUSYS_FAULT_INJECT=ON";
  const std::string path = temp_path("inject");
  std::vector<SweepPoint> grid(4);
  for (int k = 0; k < 4; ++k)
    grid[k].params = {{"r2", 1e3 * (1.0 + k)}};
  // Each job runs exactly ONE Newton solve (ladders off), so with a single
  // worker the grid order maps 1:1 onto newton.stall hit numbers.
  const auto job = [](const SweepPoint& p, int) {
    Circuit ckt;
    const int in = ckt.add_node("in", Nature::electrical);
    const int mid = ckt.add_node("mid", Nature::electrical);
    ckt.add<VSource>("V1", in, Circuit::kGround, 10.0);
    ckt.add<Resistor>("R1", in, mid, 1e3);
    ckt.add<Resistor>("R2", mid, Circuit::kGround, p.value("r2"));
    DcOptions dc;
    dc.allow_gmin_stepping = false;
    dc.allow_source_stepping = false;
    const DcResult res = api::solve_dc(ckt, dc);
    SweepOutcome o;
    o.ok = res.converged;
    o.failure = res.failure;
    if (!res.converged)
      o.error = res.failure.to_string();
    else
      o.metrics = {{"vmid", res.x[static_cast<std::size_t>(mid)]}};
    return o;
  };
  const SweepRunner runner(1);
  SweepOptions opts;
  opts.checkpoint_path = path;
  fault::arm("newton.stall", 3, 1);  // the third point's solve fails
  const auto first = runner.run(grid, job, opts);
  fault::disarm_all();
  EXPECT_TRUE(first[0].ok && first[1].ok && first[3].ok);
  EXPECT_FALSE(first[2].ok);
  EXPECT_EQ(first[2].failure.kind, FailureKind::newton_divergence);

  // The journal carries the structured verdict for the failed point.
  CheckpointData data;
  ASSERT_TRUE(load_checkpoint(path, data));
  ASSERT_EQ(data.records.size(), 4u);
  EXPECT_EQ(data.records.at(2).outcome.failure.kind, FailureKind::newton_divergence);

  // Resume re-runs ONLY the failed point; the rest restore bit-identically.
  std::atomic<int> runs{0};
  SweepOptions resume_opts;
  resume_opts.resume_path = path;
  const auto second = runner.run(
      grid,
      [&](const SweepPoint& p, int attempt) {
        ++runs;
        return job(p, attempt);
      },
      resume_opts);
  EXPECT_EQ(runs.load(), 1);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_TRUE(second[k].ok) << k;
  for (const std::size_t k : {0u, 1u, 3u}) {
    EXPECT_TRUE(second[k].restored);
    EXPECT_EQ(second[k].metrics, first[k].metrics);
  }
  EXPECT_FALSE(second[2].restored);
}

}  // namespace
}  // namespace usys::spice
