#include "spice/devices_passive.hpp"

#include <stdexcept>

#include "spice/lint.hpp"

namespace usys::spice {

Resistor::Resistor(std::string name, int a, int b, double resistance, Nature nature)
    : Device(std::move(name)), a_(a), b_(b), r_(resistance), nature_(nature) {
  if (r_ <= 0.0) throw std::invalid_argument("Resistor '" + this->name() + "': R must be > 0");
}

void Resistor::bind(Binder& binder) {
  binder.require_nature(a_, nature_, name());
  binder.require_nature(b_, nature_, name());
}

bool Resistor::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_});
  return true;
}

void Resistor::lint(LintSink& sink) const {
  sink.edge(a_, b_, LintEdgeKind::conductive);
  lint_values(sink);
}

void Resistor::lint_values(LintSink& sink) const {
  sink.check_value("resistance", r_, LintSeverity::error);
  if (nature_ == Nature::electrical) sink.check_magnitude("resistance", r_, 1e-3, 1e12);
}

void Resistor::evaluate(EvalCtx& ctx) {
  const double g = 1.0 / r_;
  const double i = g * (ctx.v(a_) - ctx.v(b_));
  ctx.f_add(a_, i);
  ctx.f_add(b_, -i);
  ctx.jf_add(a_, a_, g);
  ctx.jf_add(a_, b_, -g);
  ctx.jf_add(b_, a_, -g);
  ctx.jf_add(b_, b_, g);
}

Capacitor::Capacitor(std::string name, int a, int b, double capacitance, Nature nature)
    : Device(std::move(name)), a_(a), b_(b), c_(capacitance), nature_(nature) {
  if (c_ <= 0.0)
    throw std::invalid_argument("Capacitor '" + this->name() + "': C must be > 0");
}

void Capacitor::bind(Binder& binder) {
  binder.require_nature(a_, nature_, name());
  binder.require_nature(b_, nature_, name());
}

bool Capacitor::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_});
  return true;
}

void Capacitor::lint(LintSink& sink) const {
  sink.edge(a_, b_, LintEdgeKind::reactive);
  lint_values(sink);
}

void Capacitor::lint_values(LintSink& sink) const {
  sink.check_value("capacitance", c_);
  if (nature_ == Nature::electrical) sink.check_magnitude("capacitance", c_, 1e-18, 1.0);
}

void Capacitor::evaluate(EvalCtx& ctx) {
  const double q = c_ * (ctx.v(a_) - ctx.v(b_));
  ctx.q_add(a_, q);
  ctx.q_add(b_, -q);
  ctx.jq_add(a_, a_, c_);
  ctx.jq_add(a_, b_, -c_);
  ctx.jq_add(b_, a_, -c_);
  ctx.jq_add(b_, b_, c_);
}

Inductor::Inductor(std::string name, int a, int b, double inductance, Nature nature)
    : Device(std::move(name)), a_(a), b_(b), l_(inductance), nature_(nature) {
  if (l_ <= 0.0)
    throw std::invalid_argument("Inductor '" + this->name() + "': L must be > 0");
}

void Inductor::bind(Binder& binder) {
  binder.require_nature(a_, nature_, name());
  binder.require_nature(b_, nature_, name());
  br_ = binder.alloc_branch(nature_);
}

bool Inductor::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_, br_});
  return true;
}

void Inductor::lint(LintSink& sink) const {
  // At DC the flux term vanishes and the branch equation shorts a to b — a
  // voltage-defined edge that exists only at DC.
  sink.edge(a_, b_, LintEdgeKind::vsource_dc);
  lint_values(sink);
}

void Inductor::lint_values(LintSink& sink) const {
  sink.check_value("inductance", l_);
  if (nature_ == Nature::electrical) sink.check_magnitude("inductance", l_, 1e-12, 1e3);
}

// The mechanical twins re-label the checks in their own quantities: the
// electrical value is derived (C = m, L = 1/k, R = 1/alpha), so reporting it
// directly would point the user at a number the netlist never contained.
void Mass::lint_values(LintSink& sink) const { sink.check_value("mass", mass()); }

void Spring::lint_values(LintSink& sink) const {
  sink.check_value("stiffness", k_, LintSeverity::error);
}

void Damper::lint_values(LintSink& sink) const {
  sink.check_value("damping coefficient", alpha_);
}

void Inductor::evaluate(EvalCtx& ctx) {
  // KCL: branch current leaves a, enters b.
  const double i = ctx.v(br_);
  ctx.f_add(a_, i);
  ctx.f_add(b_, -i);
  ctx.jf_add(a_, br_, 1.0);
  ctx.jf_add(b_, br_, -1.0);
  // Branch equation: d(L i)/dt - (va - vb) = 0.
  ctx.f_add(br_, -(ctx.v(a_) - ctx.v(b_)));
  ctx.jf_add(br_, a_, -1.0);
  ctx.jf_add(br_, b_, 1.0);
  ctx.q_add(br_, l_ * i);
  ctx.jq_add(br_, br_, l_);
}

}  // namespace usys::spice
