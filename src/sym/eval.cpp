#include <cmath>

#include "sym/expr.hpp"

namespace usys::sym {

double eval(const Expr& e, const Env& env) {
  switch (e.kind()) {
    case Kind::constant:
      return e.value();
    case Kind::variable: {
      auto it = env.find(e.name());
      if (it == env.end())
        throw std::out_of_range("unbound variable in sym::eval: " + e.name());
      return it->second;
    }
    case Kind::add:
      return eval(e.args()[0], env) + eval(e.args()[1], env);
    case Kind::sub:
      return eval(e.args()[0], env) - eval(e.args()[1], env);
    case Kind::mul:
      return eval(e.args()[0], env) * eval(e.args()[1], env);
    case Kind::div:
      return eval(e.args()[0], env) / eval(e.args()[1], env);
    case Kind::neg:
      return -eval(e.args()[0], env);
    case Kind::pow:
      return std::pow(eval(e.args()[0], env), eval(e.args()[1], env));
    case Kind::sin:
      return std::sin(eval(e.args()[0], env));
    case Kind::cos:
      return std::cos(eval(e.args()[0], env));
    case Kind::tan:
      return std::tan(eval(e.args()[0], env));
    case Kind::exp:
      return std::exp(eval(e.args()[0], env));
    case Kind::log: {
      const double x = eval(e.args()[0], env);
      if (x <= 0.0) throw std::domain_error("sym::eval: log of non-positive value");
      return std::log(x);
    }
    case Kind::sqrt: {
      const double x = eval(e.args()[0], env);
      if (x < 0.0) throw std::domain_error("sym::eval: sqrt of negative value");
      return std::sqrt(x);
    }
    case Kind::abs:
      return std::abs(eval(e.args()[0], env));
  }
  throw std::logic_error("sym::eval: unreachable kind");
}

}  // namespace usys::sym
