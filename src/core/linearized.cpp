#include "core/linearized.hpp"

namespace usys::core {

LinearizedCoefficients linearize_transverse(const ResonatorParams& params,
                                            const LinearizationOptions& opts) {
  LinearizedCoefficients out;
  out.x0 = static_displacement_transverse(params, params.v_bias);
  out.f0 = force_transverse(params.geom, params.v_bias, out.x0);
  out.c0 = capacitance_transverse(params.geom, out.x0);
  out.gamma = (opts.gamma == GammaKind::tangent) ? gamma_tangent(params)
                                                 : gamma_secant(params);
  if (opts.include_spring_softening) {
    // k_e = dF/dx at the bias: F = -eps A V^2 / (2 (d+x)^2)
    //  =>  dF/dx = +eps A V0^2 / (d+x0)^3  (destabilizing).
    const double gap = params.geom.gap + out.x0;
    out.k_soft = params.geom.eps0 * params.geom.eps_r * params.geom.area *
                 params.v_bias * params.v_bias / (gap * gap * gap);
  }
  return out;
}

LinearizedTransverseElectrostatic::LinearizedTransverseElectrostatic(
    std::string name, int a, int b, int c, int d, LinearizedCoefficients coeffs)
    : Device(std::move(name)), a_(a), b_(b), c_(c), d_(d), k_(coeffs) {}

void LinearizedTransverseElectrostatic::bind(spice::Binder& binder) {
  binder.require_nature(a_, Nature::electrical, name());
  binder.require_nature(b_, Nature::electrical, name());
  binder.require_nature(c_, Nature::mechanical_translation, name());
  binder.require_nature(d_, Nature::mechanical_translation, name());
}

void LinearizedTransverseElectrostatic::start_transient(const DVector& x_dc) {
  const double uc = c_ < 0 ? 0.0 : x_dc[static_cast<std::size_t>(c_)];
  const double ud = d_ < 0 ? 0.0 : x_dc[static_cast<std::size_t>(d_)];
  xstate_.start(uc - ud);
}

void LinearizedTransverseElectrostatic::accept(const spice::AcceptCtx& ctx) {
  xstate_.accept(ctx.v(c_) - ctx.v(d_), ctx);
}

bool LinearizedTransverseElectrostatic::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_, c_, d_});
  return true;
}

void LinearizedTransverseElectrostatic::evaluate(spice::EvalCtx& ctx) {
  const double volt = ctx.v(a_) - ctx.v(b_);
  const double u = ctx.v(c_) - ctx.v(d_);

  // Electrical port: bias capacitor + motional current Gamma*u.
  const double qe = k_.c0 * volt;
  ctx.q_add(a_, qe);
  ctx.q_add(b_, -qe);
  ctx.jq_add(a_, a_, k_.c0);
  ctx.jq_add(a_, b_, -k_.c0);
  ctx.jq_add(b_, a_, -k_.c0);
  ctx.jq_add(b_, b_, k_.c0);
  // Motional current: the linearization of i = d(C(x)V)/dt contributes
  // C'(x0) V0 u = -Gamma u (C' < 0 for the gap-closing plate); the minus
  // sign makes the coupling power-conserving together with the force below.
  const double im = -k_.gamma * u;
  ctx.f_add(a_, im);
  ctx.f_add(b_, -im);
  ctx.jf_add(a_, c_, -k_.gamma);
  ctx.jf_add(a_, d_, k_.gamma);
  ctx.jf_add(b_, c_, k_.gamma);
  ctx.jf_add(b_, d_, -k_.gamma);

  // Mechanical port: attraction -Gamma*V delivered into the free plate,
  // plus the optional electrostatic softening spring.
  const double x = xstate_.value(u, ctx);
  const double sl = xstate_.slope(ctx);
  const double f_plate = -k_.gamma * volt + k_.k_soft * x;
  ctx.f_add(c_, -f_plate);
  ctx.f_add(d_, +f_plate);
  ctx.jf_add(c_, a_, k_.gamma);
  ctx.jf_add(c_, b_, -k_.gamma);
  ctx.jf_add(d_, a_, -k_.gamma);
  ctx.jf_add(d_, b_, k_.gamma);
  if (k_.k_soft != 0.0) {
    ctx.jf_add(c_, c_, -k_.k_soft * sl);
    ctx.jf_add(c_, d_, k_.k_soft * sl);
    ctx.jf_add(d_, c_, k_.k_soft * sl);
    ctx.jf_add(d_, d_, -k_.k_soft * sl);
  }
}

}  // namespace usys::core
