#include "spice/circuit.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "spice/mna.hpp"

namespace usys::spice {

Circuit::Circuit() = default;
Circuit::~Circuit() = default;

const MnaPattern& Circuit::mna_pattern() {
  bind_all();
  if (!mna_pattern_) mna_pattern_ = std::make_unique<MnaPattern>(*this);
  return *mna_pattern_;
}

double effort_abstol(Nature n) noexcept {
  switch (n) {
    case Nature::electrical: return 1e-6;                // V
    case Nature::mechanical_translation: return 1e-12;   // m/s
    case Nature::mechanical_rotation: return 1e-12;      // rad/s
    case Nature::hydraulic: return 1e-3;                 // Pa
    case Nature::thermal: return 1e-6;                   // K
  }
  return 1e-9;
}

double flow_abstol(Nature n) noexcept {
  switch (n) {
    case Nature::electrical: return 1e-12;               // A
    case Nature::mechanical_translation: return 1e-12;   // N
    case Nature::mechanical_rotation: return 1e-12;      // N*m
    case Nature::hydraulic: return 1e-12;                // m^3/s
    case Nature::thermal: return 1e-9;                   // W
  }
  return 1e-12;
}

int Binder::alloc_branch(Nature through_nature) {
  return circuit_.alloc_branch_unknown(through_nature);
}

Nature Binder::node_nature(int node) const {
  if (node == Circuit::kGround) return Nature::electrical;  // ground is universal
  return circuit_.node_nature(node);
}

void Binder::require_nature(int node, Nature expected, const std::string& device_name) const {
  if (node == Circuit::kGround) return;  // ground connects to every domain
  const Nature actual = circuit_.node_nature(node);
  if (actual != expected) {
    throw CircuitError("device '" + device_name + "': pin expects nature '" +
                       std::string(to_string(expected)) + "' but node '" +
                       circuit_.node_name(node) + "' has nature '" +
                       std::string(to_string(actual)) + "'");
  }
}

int Circuit::add_node(std::string_view name, Nature nature) {
  if (bound_) throw CircuitError("add_node after bind_all");
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) {
      if (nodes_[i].nature != nature) {
        throw CircuitError("node '" + std::string(name) + "' redeclared with nature '" +
                           std::string(to_string(nature)) + "' (was '" +
                           std::string(to_string(nodes_[i].nature)) + "')");
      }
      return static_cast<int>(i);
    }
  }
  nodes_.push_back({std::string(name), nature});
  return static_cast<int>(nodes_.size()) - 1;
}

std::optional<int> Circuit::find_node(std::string_view name) const noexcept {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<int>(i);
  }
  return std::nullopt;
}

int Circuit::node(std::string_view name) const {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<int>(i);
  }
  throw CircuitError("unknown node '" + std::string(name) + "'");
}

void Circuit::add_device(std::unique_ptr<Device> dev) {
  if (bound_) throw CircuitError("add_device after bind_all");
  for (const auto& d : devices_) {
    if (d->name() == dev->name())
      throw CircuitError("duplicate device name '" + dev->name() + "'");
  }
  devices_.push_back(std::move(dev));
}

Device* Circuit::find_device(std::string_view name) noexcept {
  for (auto& d : devices_) {
    if (d->name() == name) return d.get();
  }
  return nullptr;
}

int Circuit::alloc_branch_unknown(Nature through_nature) {
  unknown_natures_.push_back(through_nature);
  abstol_.push_back(flow_abstol(through_nature));
  return unknown_count_++;
}

void Circuit::bind_all() {
  if (bound_) return;
  // Node unknowns come first, in declaration order.
  unknown_natures_.clear();
  abstol_.clear();
  unknown_natures_.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    unknown_natures_.push_back(n.nature);
    abstol_.push_back(effort_abstol(n.nature));
  }
  unknown_count_ = static_cast<int>(nodes_.size());
  Binder binder(*this);
  for (auto& d : devices_) d->bind(binder);
  bound_ = true;
}

}  // namespace usys::spice
