// Sweep checkpoint journal: crash-safe progress for long parameter sweeps.
//
// A checkpoint is a JSONL file — one self-contained JSON object per line,
// appended (and flushed) as each grid point finishes. The format is
// append-only on purpose:
//
//   * a crash can only lose the line being written; load_checkpoint ignores
//     a torn trailing line and keeps everything before it;
//   * shard files (usim --shard k/n) merge by plain concatenation — every
//     record carries its grid index, so order never matters;
//   * re-runs of the same point simply append again; the LAST record for an
//     index wins on load (later attempts supersede earlier ones).
//
// Record schema (see docs/robustness.md for the contract):
//
//   {"i":<grid index>,"ok":<bool>,"attempts":<int>,
//    "params":[["name",<value>],...],
//    "metrics":[["name",<value>],...],
//    "error":"<string>",
//    "failure":{"kind":"<FailureKind name>","analysis":"...","time":<num|null>,
//               "iteration":<int>,"rescue":<int>,"detail":"..."}}   // only when !ok
//
// All doubles are printed with %.17g, so a value restored from a checkpoint
// round-trips bit for bit — the basis of the "--resume reproduces completed
// points bit-identically" guarantee. params are recorded so resume can
// verify the checkpoint actually belongs to the grid being run.
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "spice/sweep.hpp"

namespace usys::spice {

/// One journaled grid point: the index, the parameters it ran with, and the
/// outcome (restored SweepOutcome, including the structured failure).
struct CheckpointRecord {
  long index = -1;
  SweepPoint point;
  SweepOutcome outcome;
};

/// All records of a checkpoint file, last-write-wins per grid index.
struct CheckpointData {
  std::map<long, CheckpointRecord> records;
};

/// Appends records to `path` (created when absent), one flushed line per
/// append so a killed process loses at most the line in flight. Thread-safe
/// appends are the caller's job (SweepRunner serializes them).
class CheckpointWriter {
 public:
  /// Throws std::runtime_error when the file cannot be opened for append.
  explicit CheckpointWriter(const std::string& path);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  void append(long index, const SweepPoint& point, const SweepOutcome& outcome);

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

/// Loads a checkpoint file. Returns false only when the file cannot be read
/// at all; malformed lines (torn tail writes) are skipped with a note in
/// *err when provided. A missing file is an error — callers distinguish
/// "fresh start" from "resume" before calling.
bool load_checkpoint(const std::string& path, CheckpointData& out, std::string* err = nullptr);

/// Serializes one record to its JSONL line (no trailing newline) — exposed
/// for tests; append() uses it.
std::string checkpoint_line(long index, const SweepPoint& point, const SweepOutcome& outcome);

/// Parses one JSONL line into a record; false on malformed input.
bool parse_checkpoint_line(const std::string& line, CheckpointRecord& out);

}  // namespace usys::spice
