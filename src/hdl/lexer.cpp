#include "hdl/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "common/strings.hpp"

namespace usys::hdl {

bool is_keyword(const Token& t, const char* kw) {
  return t.kind == Tok::identifier && iequals(t.text, kw);
}

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  int line = 1;
  int col = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](Tok kind, std::string text, double value = 0.0) {
    out.push_back({kind, std::move(text), value, line, col});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      col = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      ++col;
      continue;
    }
    // '--' comment to end of line.
    if (c == '-' && i + 1 < n && src[i + 1] == '-') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) != 0 ||
                       src[j] == '_'))
        ++j;
      push(Tok::identifier, src.substr(i, j - i));
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      char* end = nullptr;
      const double v = std::strtod(src.c_str() + i, &end);
      const std::size_t j = static_cast<std::size_t>(end - src.c_str());
      push(Tok::number, src.substr(i, j - i), v);
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }
    switch (c) {
      case ':':
        if (i + 1 < n && src[i + 1] == '=') {
          push(Tok::assign, ":=");
          i += 2;
          col += 2;
        } else {
          push(Tok::colon, ":");
          ++i;
          ++col;
        }
        continue;
      case '%':
        if (i + 1 < n && src[i + 1] == '=') {
          push(Tok::contribute, "%=");
          i += 2;
          col += 2;
          continue;
        }
        throw LexError(line, col, "stray '%'");
      case '=':
        if (i + 1 < n && src[i + 1] == '>') {
          push(Tok::arrow, "=>");
          i += 2;
          col += 2;
          continue;
        }
        throw LexError(line, col, "stray '=' (did you mean ':=' or '=>'?)");
      case '(': push(Tok::lparen, "("); break;
      case ')': push(Tok::rparen, ")"); break;
      case '[': push(Tok::lbracket, "["); break;
      case ']': push(Tok::rbracket, "]"); break;
      case ',': push(Tok::comma, ","); break;
      case ';': push(Tok::semicolon, ";"); break;
      case '.': push(Tok::dot, "."); break;
      case '+': push(Tok::plus, "+"); break;
      case '-': push(Tok::minus, "-"); break;
      case '*': push(Tok::star, "*"); break;
      case '/': push(Tok::slash, "/"); break;
      case '^': push(Tok::caret, "^"); break;
      default:
        throw LexError(line, col, std::string("unexpected character '") + c + "'");
    }
    ++i;
    ++col;
  }
  push(Tok::end_of_file, "<eof>");
  return out;
}

}  // namespace usys::hdl
