#include <gtest/gtest.h>

#include <cmath>

#include "common/matrix.hpp"

namespace usys {
namespace {

TEST(Matrix, LuSolves2x2) {
  DMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  DVector b = {5.0, 10.0};
  lu_solve(a, b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(Matrix, LuRequiresPivoting) {
  // Zero on the initial diagonal forces a row swap.
  DMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  DVector b = {2.0, 3.0};
  lu_solve(a, b);
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(Matrix, LuSingularThrows) {
  DMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  DVector b = {1.0, 2.0};
  EXPECT_THROW(lu_solve(a, b), SingularMatrixError);
}

TEST(Matrix, LuRandomRoundTrip) {
  // x -> b = A x -> solve -> x for a deterministic pseudo-random matrix.
  const std::size_t n = 12;
  DMatrix a(n, n);
  unsigned seed = 12345;
  auto rnd = [&seed]() {
    seed = seed * 1664525u + 1013904223u;
    return static_cast<double>(seed % 1000) / 500.0 - 1.0;
  };
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rnd();
    a(r, r) += 4.0;  // diagonally dominant => nonsingular
  }
  DVector x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = rnd();
  DVector b(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) b[r] += a(r, c) * x_true[c];
  }
  DMatrix a_copy = a;
  lu_solve(a_copy, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-10);
}

TEST(Matrix, ComplexLu) {
  ZMatrix a(2, 2);
  a(0, 0) = {1.0, 1.0};
  a(0, 1) = {0.0, 0.0};
  a(1, 0) = {0.0, 0.0};
  a(1, 1) = {0.0, 2.0};
  ZVector b = {{2.0, 0.0}, {4.0, 0.0}};
  lu_solve(a, b);
  EXPECT_NEAR(b[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(b[0].imag(), -1.0, 1e-12);
  EXPECT_NEAR(b[1].real(), 0.0, 1e-12);
  EXPECT_NEAR(b[1].imag(), -2.0, 1e-12);
}

TEST(Matrix, LeastSquaresLine) {
  // Fit y = 2x + 1 through exact samples.
  DMatrix a(4, 2);
  DVector b(4);
  const double xs[] = {0.0, 1.0, 2.0, 3.0};
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = xs[i];
    b[i] = 2.0 * xs[i] + 1.0;
  }
  const DVector c = least_squares(a, b);
  EXPECT_NEAR(c[0], 1.0, 1e-10);
  EXPECT_NEAR(c[1], 2.0, 1e-10);
}

TEST(Matrix, LeastSquaresOverdeterminedNoise) {
  // Residual-minimizing solution of an inconsistent system lies between.
  DMatrix a(2, 1);
  a(0, 0) = 1.0;
  a(1, 0) = 1.0;
  DVector b = {1.0, 3.0};
  const DVector c = least_squares(a, b);
  EXPECT_NEAR(c[0], 2.0, 1e-12);
}

TEST(Matrix, Norms) {
  const DVector v = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
  EXPECT_DOUBLE_EQ(dot(v, v), 25.0);
  const DVector d = subtract(v, {1.0, -1.0});
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], -3.0);
}

TEST(Matrix, FillAndResize) {
  DMatrix m(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.0);
  m.fill(0.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  m.resize(4, 4);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_DOUBLE_EQ(m(3, 3), 0.0);
}

}  // namespace
}  // namespace usys
