// Electromagnetic relay (Fig. 2c transducer) pull-in study: the reluctance
// force grows as 1/(d+x)^2 while the spring force is linear, so above a
// critical coil current the armature snaps in — a behavioral discontinuity
// that linearized equivalent-circuit models fundamentally cannot express
// (the paper's core argument for behavioral HDL models).
#include <iostream>

#include "api/api.hpp"
#include "common/table.hpp"
#include "core/transducers.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

using namespace usys;

namespace {

/// Runs the relay with a given coil drive voltage; returns final armature
/// displacement (negative = toward the yoke) and whether it pulled in.
std::pair<double, bool> run_relay(double v_coil) {
  core::TransducerGeometry g;
  g.area = 4e-5;
  g.gap = 0.4e-3;
  g.turns = 600;

  spice::Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int coil = ckt.add_node("coil", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  const int disp = ckt.add_node("disp", Nature::mechanical_translation);
  ckt.add<spice::VSource>(
      "V1", drive, spice::Circuit::kGround,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {1e-3, v_coil}, {1.0, v_coil}}));
  ckt.add<spice::Resistor>("Rcoil", drive, coil, 60.0);
  ckt.add<core::ElectromagneticTransducer>("Xrel", coil, spice::Circuit::kGround, vel,
                                           spice::Circuit::kGround, g);
  ckt.add<spice::Mass>("Marm", vel, 2e-3);
  ckt.add<spice::Spring>("Karm", vel, spice::Circuit::kGround, 900.0);
  ckt.add<spice::Damper>("Darm", vel, spice::Circuit::kGround, 0.8);
  ckt.add<spice::StateIntegrator>("XD", disp, vel);

  spice::TranOptions opts;
  opts.tstop = 60e-3;
  opts.dt_max = 5e-5;
  const auto res = api::transient(ckt, opts);
  if (!res.ok) return {0.0, false};
  const double x_end = res.sample(60e-3, disp);
  // Pulled in if the armature closed most of the gap.
  return {x_end, x_end < -0.6 * g.gap};
}

}  // namespace

int main() {
  std::cout << "=== electromagnetic relay pull-in (Fig. 2c transducer) ===\n\n";
  std::cout << "gap 0.4 mm, 600 turns, spring 900 N/m: sweeping coil voltage.\n\n";

  AsciiTable t({"V_coil [V]", "armature x(60ms) [um]", "state"});
  double v_pull_in = -1.0;
  for (double v : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0}) {
    const auto [x_end, snapped] = run_relay(v);
    t.add_row({fmt_num(v), fmt_num(x_end * 1e6, 4), snapped ? "PULLED IN" : "holding"});
    if (snapped && v_pull_in < 0) v_pull_in = v;
  }
  t.print(std::cout);

  if (v_pull_in > 0) {
    std::cout << "\npull-in threshold between " << v_pull_in - 2 << " V and "
              << v_pull_in << " V.\n";
  }
  std::cout << "\nBelow the threshold the armature settles where spring and\n"
               "reluctance forces balance; above it no equilibrium exists and the\n"
               "armature snaps to the (clamped) stop. A linearized model would\n"
               "predict a finite deflection at every voltage — qualitatively wrong.\n";
  return 0;
}
