// Static bytecode verifier tests (hdl/verify.hpp): corrupt programs are
// hand-built — the compiler never emits them and the netlist layer cannot
// express them, which is exactly why the verifier exists as the backstop
// between compile() and the unchecked executors.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "hdl/interpreter.hpp"
#include "hdl/stdlib.hpp"
#include "hdl/verify.hpp"
#include "spice/circuit.hpp"

using namespace usys;
using namespace usys::hdl;

namespace {

/// Minimal well-formed program over 2 circuit unknowns: dst = x[0] * k,
/// stamped as a flow into row 0. All three streams identical (stamps are
/// compiled into commit_code too; the VM skips them at runtime).
BytecodeProgram make_valid() {
  BytecodeProgram p;
  p.entity_name = "test_entity";
  p.n_regs = 3;
  p.n_frame = 0;
  p.constants = {2.5};
  p.n_seeds = 2;
  p.seed_unknowns = {0, 1};
  std::vector<Insn> code{
      {Op::read_across, 0, 0, 0, -1, -1},  // r0 = x[0] (seed 0), other pin ground
      {Op::kconst, 1, 0, -1, -1, -1},      // r1 = 2.5
      {Op::mul, 2, 0, 1, -1, -1},          // r2 = r0 * r1
      {Op::stamp_flow, 2, 0, 0, -1, -1},   // +row 0 (seed 0)
  };
  p.dc_code = code;
  p.tran_code = code;
  p.commit_code = code;
  return p;
}

bool has_rule(const VerifyReport& rep, const std::string& rule,
              VerifySeverity sev) {
  return std::any_of(rep.issues.begin(), rep.issues.end(), [&](const VerifyIssue& is) {
    return is.rule == rule && is.severity == sev;
  });
}

TEST(Verify, CleanProgramHasNoFindings) {
  const auto rep = verify_program(make_valid(), 2);
  EXPECT_TRUE(rep.issues.empty()) << rep.error_summary();
}

TEST(Verify, RegisterOutOfBounds) {
  auto p = make_valid();
  p.dc_code[2].a = 7;  // mul reads r7 of a 3-register file
  const auto rep = verify_program(p, 2);
  EXPECT_TRUE(has_rule(rep, "hdl-operand-bounds", VerifySeverity::error));
}

TEST(Verify, ConstantIndexOutOfBounds) {
  auto p = make_valid();
  p.dc_code[1].a = 3;  // one constant exists
  const auto rep = verify_program(p, 2);
  EXPECT_TRUE(has_rule(rep, "hdl-operand-bounds", VerifySeverity::error));
}

TEST(Verify, SeedTableOutsideUnknownVector) {
  auto p = make_valid();
  p.seed_unknowns = {0, 9};  // unknown 9 of a 2-unknown circuit
  const auto rep = verify_program(p, 2);
  EXPECT_TRUE(has_rule(rep, "hdl-layout", VerifySeverity::error));
}

TEST(Verify, FrameInitSizeMismatch) {
  auto p = make_valid();
  p.n_frame = 1;  // frame_init stays empty
  const auto rep = verify_program(p, 2);
  EXPECT_TRUE(has_rule(rep, "hdl-layout", VerifySeverity::error));
}

TEST(Verify, EffortPairRowOutOfBounds) {
  auto p = make_valid();
  p.pairs.push_back({0, -1, 5});  // branch row 5 of 2 unknowns
  const auto rep = verify_program(p, 2);
  EXPECT_TRUE(has_rule(rep, "hdl-layout", VerifySeverity::error));
}

TEST(Verify, ReadBeforeWrite) {
  auto p = make_valid();
  // mul now reads r2 (its own yet-unwritten destination) instead of r0.
  p.dc_code[2].a = 2;
  const auto rep = verify_program(p, 2);
  EXPECT_TRUE(has_rule(rep, "hdl-def-use", VerifySeverity::error));
}

TEST(Verify, DeadCodeWarns) {
  auto p = make_valid();
  p.dc_code.push_back({Op::neg, 1, 0, -1, -1, -1});  // r1 redefined, never used
  const auto rep = verify_program(p, 2);
  EXPECT_TRUE(has_rule(rep, "hdl-dead-code", VerifySeverity::warning));
  EXPECT_EQ(rep.error_count(), 0);
}

TEST(Verify, StampsCountAsConsumersInCommitStream) {
  // Stamps sit in commit_code even though the VM skips them at runtime;
  // dead-code analysis must treat them as consumers or every commit stream
  // would light up.
  const auto rep = verify_program(make_valid(), 2);
  EXPECT_FALSE(has_rule(rep, "hdl-dead-code", VerifySeverity::warning));
}

TEST(Verify, ConstantStampWarns) {
  auto p = make_valid();
  // Stamp r1 (a kconst result): structurally zero gradient mask.
  p.dc_code[3] = {Op::stamp_flow, 1, 0, 0, -1, -1};
  // r2's mul is now dead as well — only assert the const-stamp finding.
  const auto rep = verify_program(p, 2);
  EXPECT_TRUE(has_rule(rep, "hdl-const-stamp", VerifySeverity::warning));
}

TEST(Verify, DroppedGradientIsError) {
  auto p = make_valid();
  // Flow stamp row 1 is a live unknown but carries no AD seed slot:
  // capture-mode execution would index the seed block out of bounds.
  p.dc_code[3] = {Op::stamp_flow, 2, 1, -1, -1, -1};
  const auto rep = verify_program(p, 2);
  EXPECT_TRUE(has_rule(rep, "hdl-grad-dropped", VerifySeverity::error));
}

TEST(Verify, BranchSignMustBeUnit) {
  auto p = make_valid();
  p.dc_code[0] = {Op::read_branch, 0, 0, 0, 3, -1};  // sign 3
  const auto rep = verify_program(p, 2);
  EXPECT_TRUE(has_rule(rep, "hdl-operand-bounds", VerifySeverity::error));
}

TEST(Verify, IntegSiteMismatch) {
  auto p = make_valid();
  p.integ_sites = 1;
  // tran integrates site 0; commit never does -> state goes stale.
  p.tran_code.insert(p.tran_code.begin() + 3, {Op::integ, 1, 0, 0, -1, -1});
  const auto rep = verify_program(p, 2);
  EXPECT_TRUE(has_rule(rep, "hdl-site-mismatch", VerifySeverity::error));
}

TEST(Verify, DoubleCommitIsError) {
  auto p = make_valid();
  p.ddt_sites = 1;
  const Insn d{Op::ddt, 1, 0, 0, -1, -1};
  p.tran_code.insert(p.tran_code.begin() + 3, d);
  p.commit_code.insert(p.commit_code.begin() + 3, d);
  p.commit_code.insert(p.commit_code.begin() + 3, d);  // committed twice
  const auto rep = verify_program(p, 2);
  EXPECT_TRUE(has_rule(rep, "hdl-site-mismatch", VerifySeverity::error));
}

// --- integration with the device bind path -----------------------------------

TEST(Verify, StdlibModelsVerifyCleanAtBind) {
  // Every stdlib transducer's compiled program must pass with zero findings
  // (not just zero errors) — the models are the reference corpus.
  struct Case {
    const char* entity;
    std::map<std::string, double> generics;
  };
  const Case cases[] = {
      {"eletran", {{"A", 1e-8}, {"d", 2e-6}, {"er", 1.0}}},
      {"etransverse", {{"A", 1e-8}, {"d", 2e-6}, {"er", 1.0}}},
      {"eparallel", {{"h", 1e-6}, {"l", 1e-5}, {"d", 2e-6}, {"er", 1.0}}},
      {"emagnetic", {{"A", 1e-8}, {"d", 2e-6}, {"N", 100.0}}},
      {"edynamic", {{"N", 100.0}, {"r", 0.01}, {"B", 0.5}}},
  };
  for (const auto& c : cases) {
    spice::Circuit ckt;
    const int e = ckt.add_node("e", Nature::electrical);
    const int m = ckt.add_node("m", Nature::mechanical_translation);
    ckt.add_device(instantiate("X1", stdlib::all_models(), c.entity, c.generics,
                               {e, spice::Circuit::kGround, m, spice::Circuit::kGround}));
    ckt.bind_all();
    const auto* dev = dynamic_cast<const HdlDevice*>(ckt.devices()[0].get());
    ASSERT_NE(dev, nullptr);
    EXPECT_TRUE(dev->verify_report().issues.empty())
        << c.entity << ": " << dev->verify_report().error_summary();
  }
}

}  // namespace
