#include <cmath>

#include "sym/expr.hpp"

namespace usys::sym {
namespace {

bool all_constant(const std::vector<Expr>& args) {
  for (const auto& a : args) {
    if (!a.is_constant()) return false;
  }
  return true;
}

double fold(Kind kind, const std::vector<Expr>& args) {
  switch (kind) {
    case Kind::add: return args[0].value() + args[1].value();
    case Kind::sub: return args[0].value() - args[1].value();
    case Kind::mul: return args[0].value() * args[1].value();
    case Kind::div: return args[0].value() / args[1].value();
    case Kind::neg: return -args[0].value();
    case Kind::pow: return std::pow(args[0].value(), args[1].value());
    case Kind::sin: return std::sin(args[0].value());
    case Kind::cos: return std::cos(args[0].value());
    case Kind::tan: return std::tan(args[0].value());
    case Kind::exp: return std::exp(args[0].value());
    case Kind::log: return std::log(args[0].value());
    case Kind::sqrt: return std::sqrt(args[0].value());
    case Kind::abs: return std::abs(args[0].value());
    default: throw std::logic_error("fold: not a foldable kind");
  }
}

Expr simplify_once(const Expr& e);

Expr simplify_node(Kind kind, std::vector<Expr> args) {
  // Division by zero must not be folded away; keep the node so eval reports it.
  const bool div_by_zero = kind == Kind::div && args[1].is_constant(0.0);
  if (all_constant(args) && kind != Kind::constant && kind != Kind::variable &&
      !div_by_zero) {
    // log/sqrt of negative constants are domain errors at eval time; keep
    // symbolic so the error surfaces where it is diagnosable.
    if (!((kind == Kind::log && args[0].value() <= 0.0) ||
          (kind == Kind::sqrt && args[0].value() < 0.0))) {
      return Expr(fold(kind, args));
    }
  }

  const Expr& a = args[0];
  switch (kind) {
    case Kind::add:
      if (a.is_constant(0.0)) return args[1];
      if (args[1].is_constant(0.0)) return a;
      break;
    case Kind::sub:
      if (args[1].is_constant(0.0)) return a;
      if (a.is_constant(0.0)) return simplify_once(-args[1]);
      if (a.equals(args[1])) return Expr(0.0);
      break;
    case Kind::mul:
      if (a.is_constant(0.0) || args[1].is_constant(0.0)) return Expr(0.0);
      if (a.is_constant(1.0)) return args[1];
      if (args[1].is_constant(1.0)) return a;
      if (a.is_constant(-1.0)) return simplify_once(-args[1]);
      if (args[1].is_constant(-1.0)) return simplify_once(-a);
      // Normalize constants to the left so products print like the paper
      // ("e0*er*A/(d+x)" rather than "A*er*e0/...").
      if (args[1].is_constant() && !a.is_constant())
        return Expr::make(Kind::mul, {args[1], a});
      break;
    case Kind::div:
      if (a.is_constant(0.0) && !args[1].is_constant(0.0)) return Expr(0.0);
      if (args[1].is_constant(1.0)) return a;
      if (a.equals(args[1]) && !a.is_constant(0.0)) return Expr(1.0);
      break;
    case Kind::neg:
      if (a.kind() == Kind::neg) return a.args()[0];
      if (a.is_constant()) return Expr(-a.value());
      break;
    case Kind::pow:
      if (args[1].is_constant(0.0)) return Expr(1.0);
      if (args[1].is_constant(1.0)) return a;
      if (a.is_constant(1.0)) return Expr(1.0);
      break;
    default:
      break;
  }
  return Expr::make(kind, std::move(args));
}

Expr simplify_once(const Expr& e) {
  switch (e.kind()) {
    case Kind::constant:
    case Kind::variable:
      return e;
    default: {
      std::vector<Expr> args;
      args.reserve(e.args().size());
      for (const auto& a : e.args()) args.push_back(simplify_once(a));
      return simplify_node(e.kind(), std::move(args));
    }
  }
}

}  // namespace

Expr simplify(const Expr& e) {
  // Iterate to a fixed point: each pass can expose new folds (e.g. a neg
  // collapsing turns (x - -y) into (x + y) territory on the next pass).
  Expr cur = e;
  for (int pass = 0; pass < 8; ++pass) {
    Expr next = simplify_once(cur);
    if (next.equals(cur)) return next;
    cur = next;
  }
  return cur;
}

}  // namespace usys::sym
