#include "hdl/bytecode.hpp"

#include <algorithm>
#include <cmath>

namespace usys::hdl {

namespace {

/// One-shot flattening of an elaborated model for a bound instance.
class Compiler {
 public:
  Compiler(const ElaboratedModel& m, const std::vector<int>& nodes,
           const std::vector<int>& branch_of_pair, BytecodeProgram& p)
      : m_(m), nodes_(nodes), branch_of_pair_(branch_of_pair), p_(p) {}

  void compile_all() {
    p_.n_frame = static_cast<int>(m_.init_frame.size());
    p_.frame_init = m_.init_frame;
    p_.ddt_sites = m_.ddt_site_count;
    p_.integ_sites = m_.integ_site_count;
    p_.assert_lines.assign(static_cast<std::size_t>(m_.assert_site_count), 0);
    high_water_ = p_.n_frame;

    for (std::size_t k = 0; k < m_.effort_pairs.size(); ++k) {
      const auto& [pa, pb] = m_.effort_pairs[k];
      BytecodeProgram::PairPlumb pl;
      pl.na = nodes_[static_cast<std::size_t>(pa)];
      pl.nb = nodes_[static_cast<std::size_t>(pb)];
      pl.br = branch_of_pair_[k];
      p_.pairs.push_back(pl);
    }

    compile_domain("dc", /*include_asserts=*/false, p_.dc_code);
    compile_domain("transient", /*include_asserts=*/false, p_.tran_code);
    compile_domain("transient", /*include_asserts=*/true, p_.commit_code);
    p_.n_regs = high_water_;
  }

 private:
  int seed_slot(int global) const {
    if (global < 0) return -1;
    for (std::size_t i = 0; i < p_.seed_unknowns.size(); ++i) {
      if (p_.seed_unknowns[i] == global) return static_cast<int>(i);
    }
    return -1;
  }

  int add_const(double v) {
    p_.constants.push_back(v);
    return static_cast<int>(p_.constants.size()) - 1;
  }

  int alloc_temp() {
    const int r = next_temp_++;
    high_water_ = std::max(high_water_, next_temp_);
    return r;
  }

  int dst_or_temp(int dst) { return dst >= 0 ? dst : alloc_temp(); }

  /// Emits code evaluating `e`; returns the register holding the result.
  /// With `dst >= 0` the result is guaranteed to land in `dst`.
  int compile_expr(const ExprNode& e, std::vector<Insn>& code, int dst = -1) {
    switch (e.kind) {
      case ExprKind::number: {
        const int r = dst_or_temp(dst);
        code.push_back({Op::kconst, r, add_const(e.number), -1, -1, -1});
        return r;
      }
      case ExprKind::name: {
        const int src = e.site_id;
        if (dst < 0 || dst == src) return src;
        code.push_back({Op::copy, dst, src, -1, -1, -1});
        return dst;
      }
      case ExprKind::port_read: {
        const int p1 = e.site_id / 256;
        const int p2 = e.site_id % 256;
        const int r = dst_or_temp(dst);
        if (e.name == "i" || e.name == "f") {
          bool forward = false;
          const int k = m_.effort_pair_index(p1, p2, &forward);
          if (k < 0)
            throw ElabError("entity '" + m_.entity_name + "' line " +
                            std::to_string(e.line) +
                            ": flow read on a pin pair without a '.v %=' "
                            "contribution (missed at elaboration)");
          const int br = branch_of_pair_[static_cast<std::size_t>(k)];
          code.push_back({Op::read_branch, r, br, seed_slot(br), forward ? 1 : -1, -1});
          return r;
        }
        const int n1 = nodes_[static_cast<std::size_t>(p1)];
        const int n2 = nodes_[static_cast<std::size_t>(p2)];
        code.push_back({Op::read_across, r, n1, seed_slot(n1), n2, seed_slot(n2)});
        return r;
      }
      case ExprKind::unary_neg: {
        const int ra = compile_expr(*e.args[0], code);
        const int r = dst_or_temp(dst);
        code.push_back({Op::neg, r, ra, -1, -1, -1});
        return r;
      }
      case ExprKind::binary: {
        const int ra = compile_expr(*e.args[0], code);
        const int rb = compile_expr(*e.args[1], code);
        Op op;
        switch (e.name.empty() ? '\0' : e.name[0]) {
          case '+': op = Op::add; break;
          case '-': op = Op::sub; break;
          case '*': op = Op::mul; break;
          case '/': op = Op::div; break;
          case '^': op = Op::pow; break;
          default:
            throw ElabError("entity '" + m_.entity_name + "' line " +
                            std::to_string(e.line) + ": unknown binary operator '" +
                            e.name + "' (missed at elaboration)");
        }
        const int r = dst_or_temp(dst);
        code.push_back({op, r, ra, rb, -1, -1});
        return r;
      }
      case ExprKind::call: {
        if (e.name == "ddt" || e.name == "integ") {
          const int ra = compile_expr(*e.args[0], code);
          const int r = dst_or_temp(dst);
          code.push_back({e.name == "ddt" ? Op::ddt : Op::integ, r, ra, e.site_id,
                          -1, -1});
          return r;
        }
        if (e.name == "pow" || e.name == "min" || e.name == "max") {
          const int ra = compile_expr(*e.args[0], code);
          const int rb = compile_expr(*e.args[1], code);
          const Op op = e.name == "pow" ? Op::pow : (e.name == "min" ? Op::min : Op::max);
          const int r = dst_or_temp(dst);
          code.push_back({op, r, ra, rb, -1, -1});
          return r;
        }
        if (e.name == "limit") {
          const int rx = compile_expr(*e.args[0], code);
          const int rlo = compile_expr(*e.args[1], code);
          const int rhi = compile_expr(*e.args[2], code);
          const int r = dst_or_temp(dst);
          code.push_back({Op::limit, r, rx, rlo, rhi, -1});
          return r;
        }
        Op op;
        if (e.name == "sin") op = Op::sin;
        else if (e.name == "cos") op = Op::cos;
        else if (e.name == "tan") op = Op::tan;
        else if (e.name == "exp") op = Op::exp;
        else if (e.name == "log") op = Op::log;
        else if (e.name == "sqrt") op = Op::sqrt;
        else if (e.name == "abs") op = Op::abs;
        else
          throw ElabError("entity '" + m_.entity_name + "' line " +
                          std::to_string(e.line) + ": unknown function '" + e.name +
                          "' (missed at elaboration)");
        const int ra = compile_expr(*e.args[0], code);
        const int r = dst_or_temp(dst);
        code.push_back({op, r, ra, -1, -1, -1});
        return r;
      }
    }
    throw ElabError("unreachable expression kind in bytecode compiler");
  }

  void compile_stmt(const Stmt& s, bool include_asserts, std::vector<Insn>& code) {
    next_temp_ = p_.n_frame;  // statement results live in frame registers;
                              // expression temporaries are reusable between statements
    if (s.kind == StmtKind::assign) {
      compile_expr(*s.expr, code, s.slot);
      return;
    }
    if (s.kind == StmtKind::assertion) {
      if (!include_asserts) return;
      const int ra = compile_expr(*s.expr, code);
      p_.assert_lines[static_cast<std::size_t>(s.slot)] = s.line;
      code.push_back({Op::assert_check, -1, ra, s.slot, -1, -1});
      return;
    }
    // Contribution: evaluate, then stamp with pre-resolved rows and signs.
    const int ra = compile_expr(*s.expr, code);
    if (s.field == "v") {
      bool forward = false;
      const int k = m_.effort_pair_index(s.p1, s.p2, &forward);
      if (k < 0)
        throw ElabError("entity '" + m_.entity_name + "' line " + std::to_string(s.line) +
                        ": effort contribution without a registered pair");
      const int br = branch_of_pair_[static_cast<std::size_t>(k)];
      code.push_back({Op::stamp_effort, ra, br, seed_slot(br), forward ? -1 : 1, -1});
      return;
    }
    const int n1 = nodes_[static_cast<std::size_t>(s.p1)];
    const int n2 = nodes_[static_cast<std::size_t>(s.p2)];
    code.push_back({Op::stamp_flow, ra, n1, seed_slot(n1), n2, seed_slot(n2)});
  }

  /// Mirrors HdlDevice::run's block selection: blocks tagged with `domain`
  /// run; if none carry it, the transient/ac blocks are the fallback.
  void compile_domain(const char* domain, bool include_asserts, std::vector<Insn>& code) {
    bool have_domain = false;
    for (const auto& b : m_.blocks) {
      if (b.has_domain(domain)) have_domain = true;
    }
    for (const auto& b : m_.blocks) {
      const bool selected = have_domain
                                ? b.has_domain(domain)
                                : (b.has_domain("transient") || b.has_domain("ac"));
      if (!selected) continue;
      for (const auto& s : b.stmts) compile_stmt(s, include_asserts, code);
    }
  }

  const ElaboratedModel& m_;
  const std::vector<int>& nodes_;
  const std::vector<int>& branch_of_pair_;
  BytecodeProgram& p_;
  int next_temp_ = 0;
  int high_water_ = 0;
};

}  // namespace

BytecodeProgram compile(const ElaboratedModel& model, const std::vector<int>& nodes,
                        const std::vector<int>& branch_of_pair,
                        const std::vector<int>& seed_unknowns) {
  BytecodeProgram p;
  p.entity_name = model.entity_name;
  p.seed_unknowns = seed_unknowns;
  p.n_seeds = static_cast<int>(seed_unknowns.size());
  Compiler(model, nodes, branch_of_pair, p).compile_all();
  return p;
}

void BytecodeVm::reset(const BytecodeProgram* prog) {
  prog_ = prog;
  val_.assign(static_cast<std::size_t>(prog->n_regs), 0.0);
  grad_.assign(static_cast<std::size_t>(prog->n_regs) *
                   static_cast<std::size_t>(prog->n_seeds),
               0.0);
}

void BytecodeVm::run(const RunIo& io) {
  const BytecodeProgram& p = *prog_;
  const std::size_t S = static_cast<std::size_t>(p.n_seeds);
  const DVector& x = *io.x;
  double* val = val_.data();
  double* grad = grad_.data();
  const auto G = [&](std::int32_t r) { return grad + static_cast<std::size_t>(r) * S; };

  // Frame registers restart from the elaborated init values each run (the
  // AST walker rebuilds its Dual frame the same way); temporaries are always
  // fully written before being read, so they need no clearing.
  std::copy(p.frame_init.begin(), p.frame_init.end(), val);
  std::fill(grad, grad + static_cast<std::size_t>(p.n_frame) * S, 0.0);

  spice::EvalCtx* ctx = io.ctx;
  const bool capture = io.jf_capture != nullptr;
  const bool stamping = !capture && ctx != nullptr && io.pass != HdlPass::commit;
  const int* seeds = p.seed_unknowns.data();

  // Effort-pair plumbing: KCL for the branch flow and the across part of the
  // branch equation (identical to the AST walker's preamble). The plumbing
  // is pass-independent, so the capture difference cancels it — skip.
  if (stamping) {
    for (const auto& pl : p.pairs) {
      ctx->f_add(pl.na, ctx->v(pl.br));
      ctx->f_add(pl.nb, -ctx->v(pl.br));
      ctx->jf_add(pl.na, pl.br, 1.0);
      ctx->jf_add(pl.nb, pl.br, -1.0);
      ctx->f_add(pl.br, ctx->v(pl.na) - ctx->v(pl.nb));
      ctx->jf_add(pl.br, pl.na, 1.0);
      ctx->jf_add(pl.br, pl.nb, -1.0);
    }
  }

  const std::vector<Insn>& code = (io.pass == HdlPass::commit)     ? p.commit_code
                                  : (io.pass == HdlPass::transient) ? p.tran_code
                                                                    : p.dc_code;

  for (const Insn& in : code) {
    switch (in.op) {
      case Op::kconst: {
        val[in.dst] = p.constants[static_cast<std::size_t>(in.a)];
        std::fill(G(in.dst), G(in.dst) + S, 0.0);
        break;
      }
      case Op::copy: {
        if (in.dst != in.a) {
          val[in.dst] = val[in.a];
          std::copy(G(in.a), G(in.a) + S, G(in.dst));
        }
        break;
      }
      case Op::read_across: {
        double v = 0.0;
        if (in.a >= 0) v += x[static_cast<std::size_t>(in.a)];
        if (in.c >= 0) v -= x[static_cast<std::size_t>(in.c)];
        double* g = G(in.dst);
        std::fill(g, g + S, 0.0);
        if (in.b >= 0) g[in.b] += 1.0;
        if (in.d >= 0) g[in.d] -= 1.0;
        val[in.dst] = v;
        break;
      }
      case Op::read_branch: {
        const double sgn = static_cast<double>(in.c);
        double* g = G(in.dst);
        std::fill(g, g + S, 0.0);
        g[in.b] = sgn;
        val[in.dst] = sgn * x[static_cast<std::size_t>(in.a)];
        break;
      }
      case Op::neg: {
        const double a = val[in.a];
        const double* ga = G(in.a);
        double* gd = G(in.dst);
        for (std::size_t i = 0; i < S; ++i) gd[i] = -ga[i];
        val[in.dst] = -a;
        break;
      }
      case Op::add: {
        const double a = val[in.a], b = val[in.b];
        const double *ga = G(in.a), *gb = G(in.b);
        double* gd = G(in.dst);
        for (std::size_t i = 0; i < S; ++i) gd[i] = ga[i] + gb[i];
        val[in.dst] = a + b;
        break;
      }
      case Op::sub: {
        const double a = val[in.a], b = val[in.b];
        const double *ga = G(in.a), *gb = G(in.b);
        double* gd = G(in.dst);
        for (std::size_t i = 0; i < S; ++i) gd[i] = ga[i] - gb[i];
        val[in.dst] = a - b;
        break;
      }
      case Op::mul: {
        const double a = val[in.a], b = val[in.b];
        const double *ga = G(in.a), *gb = G(in.b);
        double* gd = G(in.dst);
        for (std::size_t i = 0; i < S; ++i) gd[i] = ga[i] * b + a * gb[i];
        val[in.dst] = a * b;
        break;
      }
      case Op::div: {
        // Same formulas as sym::Dual::operator/ for bit parity with the AST.
        const double a = val[in.a], b = val[in.b];
        const double inv = 1.0 / b;
        const double rv = a * inv;
        const double *ga = G(in.a), *gb = G(in.b);
        double* gd = G(in.dst);
        for (std::size_t i = 0; i < S; ++i) gd[i] = (ga[i] - rv * gb[i]) * inv;
        val[in.dst] = rv;
        break;
      }
      case Op::pow: {
        const double a = val[in.a], b = val[in.b];
        const double f = std::pow(a, b);
        const double dfa = b * std::pow(a, b - 1.0);
        const double dfb = (a > 0.0) ? f * std::log(a) : 0.0;
        const double *ga = G(in.a), *gb = G(in.b);
        double* gd = G(in.dst);
        for (std::size_t i = 0; i < S; ++i) gd[i] = dfa * ga[i] + dfb * gb[i];
        val[in.dst] = f;
        break;
      }
      case Op::sin: {
        const double a = val[in.a];
        const double f = std::sin(a), df = std::cos(a);
        const double* ga = G(in.a);
        double* gd = G(in.dst);
        for (std::size_t i = 0; i < S; ++i) gd[i] = df * ga[i];
        val[in.dst] = f;
        break;
      }
      case Op::cos: {
        const double a = val[in.a];
        const double f = std::cos(a), df = -std::sin(a);
        const double* ga = G(in.a);
        double* gd = G(in.dst);
        for (std::size_t i = 0; i < S; ++i) gd[i] = df * ga[i];
        val[in.dst] = f;
        break;
      }
      case Op::tan: {
        const double a = val[in.a];
        const double c = std::cos(a);
        const double f = std::tan(a), df = 1.0 / (c * c);
        const double* ga = G(in.a);
        double* gd = G(in.dst);
        for (std::size_t i = 0; i < S; ++i) gd[i] = df * ga[i];
        val[in.dst] = f;
        break;
      }
      case Op::exp: {
        const double f = std::exp(val[in.a]);
        const double* ga = G(in.a);
        double* gd = G(in.dst);
        for (std::size_t i = 0; i < S; ++i) gd[i] = f * ga[i];
        val[in.dst] = f;
        break;
      }
      case Op::log: {
        const double a = val[in.a];
        const double f = std::log(a), df = 1.0 / a;
        const double* ga = G(in.a);
        double* gd = G(in.dst);
        for (std::size_t i = 0; i < S; ++i) gd[i] = df * ga[i];
        val[in.dst] = f;
        break;
      }
      case Op::sqrt: {
        const double f = std::sqrt(val[in.a]);
        const double df = 0.5 / f;
        const double* ga = G(in.a);
        double* gd = G(in.dst);
        for (std::size_t i = 0; i < S; ++i) gd[i] = df * ga[i];
        val[in.dst] = f;
        break;
      }
      case Op::abs: {
        const double a = val[in.a];
        const double df = a >= 0.0 ? 1.0 : -1.0;
        const double* ga = G(in.a);
        double* gd = G(in.dst);
        for (std::size_t i = 0; i < S; ++i) gd[i] = df * ga[i];
        val[in.dst] = std::abs(a);
        break;
      }
      case Op::min:
      case Op::max: {
        // Piecewise selection: value and gradient follow the active branch.
        const bool pick_a = (in.op == Op::min) ? (val[in.a] <= val[in.b])
                                               : (val[in.a] >= val[in.b]);
        const std::int32_t src = pick_a ? in.a : in.b;
        if (src != in.dst) {
          val[in.dst] = val[src];
          std::copy(G(src), G(src) + S, G(in.dst));
        }
        break;
      }
      case Op::limit: {
        std::int32_t src = in.a;
        if (val[in.a] < val[in.b]) src = in.b;
        else if (val[in.a] > val[in.c]) src = in.c;
        if (src != in.dst) {
          val[in.dst] = val[src];
          std::copy(G(src), G(src) + S, G(in.dst));
        }
        break;
      }
      case Op::ddt: {
        DdtSiteState& site = (*io.ddt)[static_cast<std::size_t>(in.b)];
        const double u = val[in.a];
        const double* gu = G(in.a);
        double* gd = G(in.dst);
        switch (io.pass) {
          case HdlPass::dc:
            std::fill(gd, gd + S, 0.0);
            val[in.dst] = 0.0;
            break;
          case HdlPass::dc_ddt: {
            // jq-extraction: value 0 (u - u, NaN-preserving like the AST),
            // argument gradient passes with unit gain.
            for (std::size_t i = 0; i < S; ++i) gd[i] = gu[i];
            val[in.dst] = u - u;
            break;
          }
          case HdlPass::transient:
          case HdlPass::commit: {
            const double a0 = 1.0 / io.c1;
            const double hist = (io.c0 > 0.0) ? (-a0 * site.u_prev - site.udot_prev)
                                              : (-a0 * site.u_prev);
            const double r = u * a0 + hist;
            for (std::size_t i = 0; i < S; ++i) gd[i] = gu[i] * a0;
            val[in.dst] = r;
            if (io.pass == HdlPass::commit) {
              site.udot_prev = r;
              site.u_prev = u;
            }
            break;
          }
        }
        break;
      }
      case Op::integ: {
        IntegSiteState& site = (*io.integ)[static_cast<std::size_t>(in.b)];
        const double u = val[in.a];
        const double* gu = G(in.a);
        double* gd = G(in.dst);
        switch (io.pass) {
          case HdlPass::dc:
          case HdlPass::dc_ddt:
            std::fill(gd, gd + S, 0.0);
            val[in.dst] = site.s0;
            break;
          case HdlPass::transient:
          case HdlPass::commit: {
            const double r = u * io.c1 + (site.s_prev + io.c0 * site.e_prev);
            for (std::size_t i = 0; i < S; ++i) gd[i] = gu[i] * io.c1;
            val[in.dst] = r;
            if (io.pass == HdlPass::commit) {
              site.s_prev = r;
              site.e_prev = u;
            }
            break;
          }
        }
        break;
      }
      case Op::stamp_flow: {
        const double v = val[in.dst];
        const double* g = G(in.dst);
        if (capture) {
          if (in.a >= 0) {
            double* row = io.jf_capture + static_cast<std::size_t>(in.b) * S;
            for (std::size_t i = 0; i < S; ++i) row[i] += g[i];
          }
          if (in.c >= 0) {
            double* row = io.jf_capture + static_cast<std::size_t>(in.d) * S;
            for (std::size_t i = 0; i < S; ++i) row[i] -= g[i];
          }
        } else if (stamping) {
          if (in.a >= 0) {
            ctx->f_add(in.a, v);
            for (std::size_t i = 0; i < S; ++i) {
              if (g[i] != 0.0) ctx->jf_add(in.a, seeds[i], g[i]);
            }
          }
          if (in.c >= 0) {
            ctx->f_add(in.c, -v);
            for (std::size_t i = 0; i < S; ++i) {
              if (g[i] != 0.0) ctx->jf_add(in.c, seeds[i], -g[i]);
            }
          }
        }
        break;
      }
      case Op::stamp_effort: {
        const double sgn = static_cast<double>(in.c);
        const double v = val[in.dst];
        const double* g = G(in.dst);
        if (capture) {
          double* row = io.jf_capture + static_cast<std::size_t>(in.b) * S;
          for (std::size_t i = 0; i < S; ++i) row[i] += sgn * g[i];
        } else if (stamping) {
          ctx->f_add(in.a, sgn * v);
          for (std::size_t i = 0; i < S; ++i) {
            if (g[i] != 0.0) ctx->jf_add(in.a, seeds[i], sgn * g[i]);
          }
        }
        break;
      }
      case Op::assert_check: {
        if (io.pass == HdlPass::commit && io.fired_asserts != nullptr &&
            val[in.a] <= 0.0) {
          io.fired_asserts->emplace_back(in.b, val[in.a]);
        }
        break;
      }
    }
  }
}

}  // namespace usys::hdl
