// Registers the paper's transducer models as netlist X-device types:
//
//   X<id> ea eb mc md ETRANSV a=<m^2> d=<m> er=<1> [x0=<m>]
//   X<id> ea eb mc md ETRANSP h=<m> l=<m> d=<m> er=<1> [x0=<m>]
//   X<id> ea eb mc md EMAG    a=<m^2> d=<m> n=<turns> [x0=<m>]
//   X<id> ea eb mc md EDYN    n=<turns> r=<m> b=<T>
//   X<id> ea eb mc md LINTRANSV a=<m^2> d=<m> er=<1> v0=<V> m=<kg> k=<N/m>
//                                [alpha=<Ns/m>] [secant=1]
//
// Pin order: electrical +, electrical -, mechanical free plate, mechanical
// reference.
//
// Array macro (the paper's thousand-transducer MEMS workload in one card):
//
//   X<id> ea eb TRANSARRAY n=<elements> a=<m^2> d=<m> [er=<1>] m=<kg>
//                          k=<N/m> [alpha=<Ns/m>] [dspread=<frac>] [x0=<m>]
//
// expands to n transverse electrostatic transducers sharing the ea/eb
// electrical bus, each with its own mechanical node "<id>_v<i>" carrying a
// Mass/Spring/Damper suspension against the fixed frame. dspread varies the
// gap linearly across elements by +-frac (fabrication-gradient scenarios).
//
// HDL-AT stdlib models as netlist cards (same 4-pin order; executed by the
// HDL engine instead of the hand-written C++ devices — see docs/hdl.md):
//
//   X<id> ea eb mc md HDLTRANSV a=<m^2> d=<m> er=<1>   (paper Listing 1)
//   X<id> ea eb mc md HDLTRANSE a=<m^2> d=<m> er=<1>   (energy-complete)
//   X<id> ea eb mc md HDLTRANSP h=<m> l=<m> d=<m> er=<1>
//   X<id> ea eb mc md HDLMAG    a=<m^2> d=<m> n=<turns>
//   X<id> ea eb mc md HDLDYN    n=<turns> r=<m> b=<T>
//
// Every HDL card accepts `mode=ast|bytecode|codegen` (default: the
// `.options hdl=` setting in effect, else bytecode). This registration also
// installs the `hdl` string option on the parser.
#pragma once

#include "spice/netlist.hpp"

namespace usys::core {

/// Installs the ETRANSV/ETRANSP/EMAG/EDYN/LINTRANSV factories.
void register_transducer_devices(spice::NetlistParser& parser);

/// A parser with both the built-in and the transducer device types.
spice::NetlistParser make_full_parser();

}  // namespace usys::core
