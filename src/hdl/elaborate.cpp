#include "hdl/elaborate.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace usys::hdl {

int ElaboratedModel::pin_index(const std::string& name) const {
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (iequals(pins[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

int ElaboratedModel::effort_pair_index(int p1, int p2, bool* forward) const {
  for (std::size_t k = 0; k < effort_pairs.size(); ++k) {
    const auto& [a, b] = effort_pairs[k];
    if (a == p1 && b == p2) {
      if (forward != nullptr) *forward = true;
      return static_cast<int>(k);
    }
    if (a == p2 && b == p1) {
      if (forward != nullptr) *forward = false;
      return static_cast<int>(k);
    }
  }
  return -1;
}

namespace {

bool is_across_field(const std::string& f) { return f == "v" || f == "tv"; }
bool is_through_field(const std::string& f) { return f == "i" || f == "f"; }

class Elaborator {
 public:
  Elaborator(ElaboratedModel& model) : m_(model) {}

  /// Diagnostic prefix: every resolution error names the entity and line.
  std::string where(int line) const {
    return "entity '" + m_.entity_name + "' line " + std::to_string(line) + ": ";
  }

  int slot_of(const std::string& name, int line) const {
    for (std::size_t i = 0; i < m_.slot_names.size(); ++i) {
      if (iequals(m_.slot_names[i], name)) return static_cast<int>(i);
    }
    throw ElabError(where(line) + "unknown identifier '" + name + "'");
  }

  int pin_of(const std::string& name, int line) const {
    const int idx = m_.pin_index(name);
    if (idx < 0)
      throw ElabError(where(line) + "unknown pin '" + name + "'");
    return idx;
  }

  bool effort_pair(int p1, int p2) const { return m_.effort_pair_index(p1, p2) >= 0; }

  void resolve_expr(ExprNode& e) {
    switch (e.kind) {
      case ExprKind::number:
        return;
      case ExprKind::name:
        e.site_id = slot_of(e.name, e.line);
        return;
      case ExprKind::port_read: {
        const int p1 = pin_of(e.pin1, e.line);
        const int p2 = pin_of(e.pin2, e.line);
        e.args.clear();
        if (is_across_field(e.name)) {
          if (e.name == "tv" &&
              m_.pins[static_cast<std::size_t>(p1)].nature != Nature::mechanical_translation)
            throw ElabError(where(e.line) + "'.tv' read requires mechanical pins");
        } else if (is_through_field(e.name)) {
          if (!effort_pair(p1, p2))
            throw ElabError(where(e.line) + "'." + e.name + "' read on [" + e.pin1 +
                            "," + e.pin2 +
                            "] requires a '.v %=' contribution on that pin pair");
        } else {
          throw ElabError(where(e.line) + "unknown port field '." + e.name + "'");
        }
        // Encode resolved pin indices: reuse site_id as p1*256+p2.
        e.site_id = p1 * 256 + p2;
        return;
      }
      case ExprKind::unary_neg:
        resolve_expr(*e.args[0]);
        return;
      case ExprKind::binary: {
        // Reject unrecognized operators here rather than letting the
        // executors silently evaluate them to 0 (the old fallthrough).
        if (e.name.size() != 1 || std::string("+-*/^").find(e.name[0]) == std::string::npos)
          throw ElabError(where(e.line) + "unknown binary operator '" + e.name + "'");
        resolve_expr(*e.args[0]);
        resolve_expr(*e.args[1]);
        return;
      }
      case ExprKind::call: {
        if (e.name == "ddt") {
          if (e.args.size() != 1)
            throw ElabError(where(e.line) + "ddt takes one argument");
          e.site_id = m_.ddt_site_count++;
        } else if (e.name == "integ") {
          if (e.args.size() != 1)
            throw ElabError(where(e.line) + "integ takes one argument");
          e.site_id = m_.integ_site_count++;
        } else if (e.name == "pow") {
          if (e.args.size() != 2)
            throw ElabError(where(e.line) + "pow takes two arguments");
        } else if (e.name == "sin" || e.name == "cos" || e.name == "tan" ||
                   e.name == "exp" || e.name == "log" || e.name == "sqrt" ||
                   e.name == "abs") {
          if (e.args.size() != 1)
            throw ElabError(where(e.line) + e.name + " takes one argument");
        } else if (e.name == "min" || e.name == "max") {
          if (e.args.size() != 2)
            throw ElabError(where(e.line) + e.name + " takes two arguments");
        } else if (e.name == "limit") {
          if (e.args.size() != 3)
            throw ElabError(where(e.line) + "limit takes three arguments (x, lo, hi)");
        } else {
          throw ElabError(where(e.line) + "unknown function '" + e.name + "'");
        }
        for (auto& a : e.args) resolve_expr(*a);
        return;
      }
    }
  }

  void resolve_stmt(Stmt& s) {
    if (s.kind == StmtKind::assertion) {
      s.slot = m_.assert_site_count++;
      resolve_expr(*s.expr);
      return;
    }
    if (s.kind == StmtKind::assign) {
      s.slot = slot_of(s.target, s.line);
      resolve_expr(*s.expr);
      return;
    }
    const int p1 = pin_of(s.pin1, s.line);
    const int p2 = pin_of(s.pin2, s.line);
    const Nature nat = m_.pins[static_cast<std::size_t>(p1)].nature;
    if (m_.pins[static_cast<std::size_t>(p2)].nature != nat)
      throw ElabError(where(s.line) + "contribution pins must share a nature");
    if (s.field == "i" && nat != Nature::electrical)
      throw ElabError(where(s.line) + "'.i %=' requires electrical pins");
    if (s.field == "f" && nat != Nature::mechanical_translation)
      throw ElabError(where(s.line) + "'.f %=' requires mechanical pins");
    if (s.field == "tv")
      throw ElabError(where(s.line) +
                      "'.tv' is a read field; use '.v %=' for effort contributions");
    // Resolved pin indices for the executors (pin1/pin2 keep the source
    // names for diagnostics).
    s.p1 = p1;
    s.p2 = p2;
    resolve_expr(*s.expr);
  }

 private:
  ElaboratedModel& m_;
};

/// Minimal constant-expression evaluator for init blocks (no ports, no
/// ddt/integ; variables may chain).
double eval_const(const ExprNode& e, const std::vector<double>& frame) {
  switch (e.kind) {
    case ExprKind::number:
      return e.number;
    case ExprKind::name:
      return frame[static_cast<std::size_t>(e.site_id)];
    case ExprKind::unary_neg:
      return -eval_const(*e.args[0], frame);
    case ExprKind::binary: {
      const double a = eval_const(*e.args[0], frame);
      const double b = eval_const(*e.args[1], frame);
      switch (e.name[0]) {
        case '+': return a + b;
        case '-': return a - b;
        case '*': return a * b;
        case '/': return a / b;
        case '^': return std::pow(a, b);
        default: break;
      }
      throw ElabError("bad binary op in init block");
    }
    case ExprKind::call: {
      if (e.name == "pow")
        return std::pow(eval_const(*e.args[0], frame), eval_const(*e.args[1], frame));
      if (e.name == "min")
        return std::min(eval_const(*e.args[0], frame), eval_const(*e.args[1], frame));
      if (e.name == "max")
        return std::max(eval_const(*e.args[0], frame), eval_const(*e.args[1], frame));
      if (e.name == "limit") {
        const double x = eval_const(*e.args[0], frame);
        const double lo = eval_const(*e.args[1], frame);
        const double hi = eval_const(*e.args[2], frame);
        return std::clamp(x, lo, hi);
      }
      const double a = eval_const(*e.args[0], frame);
      if (e.name == "sin") return std::sin(a);
      if (e.name == "cos") return std::cos(a);
      if (e.name == "tan") return std::tan(a);
      if (e.name == "exp") return std::exp(a);
      if (e.name == "log") return std::log(a);
      if (e.name == "sqrt") return std::sqrt(a);
      if (e.name == "abs") return std::abs(a);
      throw ElabError("function '" + e.name + "' not allowed in init block");
    }
    case ExprKind::port_read:
      throw ElabError("port reads not allowed in init block");
  }
  throw ElabError("unreachable init expression kind");
}

}  // namespace

ElaboratedModel elaborate(DesignUnit unit, const std::string& entity,
                          const std::map<std::string, double>& generics) {
  const Entity* ent = unit.find_entity(entity);
  if (ent == nullptr) throw ElabError("no entity named '" + entity + "'");
  const Architecture* arch_c = unit.find_architecture_of(entity);
  if (arch_c == nullptr) throw ElabError("no architecture for entity '" + entity + "'");

  ElaboratedModel m;
  m.entity_name = ent->name;
  m.architecture_name = arch_c->name;
  m.pins = ent->pins;
  if (m.pins.size() < 2) throw ElabError("entity '" + entity + "' needs at least two pins");

  // Frame layout: generics first, then architecture variables.
  for (const auto& g : ent->generics) {
    m.slot_names.push_back(g.name);
    double value = 0.0;
    bool bound = false;
    for (const auto& [k, v] : generics) {
      if (iequals(k, g.name)) {
        value = v;
        bound = true;
        break;
      }
    }
    if (!bound) {
      if (!g.has_default)
        throw ElabError("generic '" + g.name + "' of '" + entity +
                        "' has no binding and no default");
      value = g.default_value;
    }
    m.init_frame.push_back(value);
  }
  m.generic_count = static_cast<int>(ent->generics.size());
  for (const auto& v : arch_c->variables) {
    for (const auto& existing : m.slot_names) {
      if (iequals(existing, v.name))
        throw ElabError("variable '" + v.name + "' shadows a generic");
    }
    m.slot_names.push_back(v.name);
    m.init_frame.push_back(0.0);
  }

  // Move the architecture out of the unit so we own the statement ASTs.
  Architecture arch;
  for (auto& a : unit.architectures) {
    if (iequals(a.entity, entity)) {
      arch = std::move(a);
      break;
    }
  }

  // Pre-scan: effort pairs come from '.v %=' contributions (needed before
  // '.i' reads can be validated).
  Elaborator el(m);
  for (const auto& b : arch.blocks) {
    for (const auto& s : b.stmts) {
      if (s.kind == StmtKind::contribution && s.field == "v") {
        const int p1 = m.pin_index(s.pin1);
        const int p2 = m.pin_index(s.pin2);
        if (p1 < 0 || p2 < 0)
          throw ElabError("line " + std::to_string(s.line) + ": unknown pin in contribution");
        if (!el.effort_pair(p1, p2)) m.effort_pairs.emplace_back(p1, p2);
      }
    }
  }

  // Resolve all blocks; execute init blocks immediately into the frame.
  for (auto& b : arch.blocks) {
    for (auto& s : b.stmts) el.resolve_stmt(s);
    if (b.has_domain("init")) {
      for (const auto& s : b.stmts) {
        if (s.kind != StmtKind::assign)
          throw ElabError("line " + std::to_string(s.line) +
                          ": only assignments allowed in init blocks");
        m.init_frame[static_cast<std::size_t>(s.slot)] = eval_const(*s.expr, m.init_frame);
      }
      continue;  // init blocks are consumed at elaboration
    }
    m.blocks.push_back(std::move(b));
  }
  return m;
}

}  // namespace usys::hdl
