// Pull-in of the transverse electrostatic transducer: the classic MEMS
// instability at V_pi = sqrt(8 k d^3/(27 eps A)), x_pi = -d/3 — a behavioral
// discontinuity only the non-linear model captures.
#include <gtest/gtest.h>

#include <cmath>

#include "api/api.hpp"
#include "core/resonator_system.hpp"
#include "spice/analysis.hpp"

namespace usys::core {
namespace {

TEST(PullIn, AnalyticVoltageForTable4) {
  ResonatorParams p;
  // V_pi = sqrt(8*200*(1.5e-4)^3/(27*8.8542e-12*1e-4)) ~ 475 V.
  const double v_pi = pull_in_voltage(p);
  EXPECT_NEAR(v_pi, 475.0, 5.0);
  EXPECT_DOUBLE_EQ(pull_in_displacement(p), -0.15e-3 / 3.0);
}

TEST(PullIn, StaticSolverDivergesAbovePullIn) {
  ResonatorParams p;
  const double v_pi = pull_in_voltage(p);
  // Below pull-in: solvable, |x| < d/3.
  const double x_below = static_displacement_transverse(p, 0.95 * v_pi);
  EXPECT_GT(x_below, -p.geom.gap / 3.0);
  // Above: no equilibrium.
  EXPECT_THROW(static_displacement_transverse(p, 1.1 * v_pi), std::domain_error);
}

TEST(PullIn, DisplacementApproachesOneThirdGap) {
  // At V -> V_pi the stable equilibrium approaches x = -d/3.
  ResonatorParams p;
  const double v_pi = pull_in_voltage(p);
  const double x99 = static_displacement_transverse(p, 0.999 * v_pi);
  EXPECT_LT(x99, -0.25 * p.geom.gap);
  EXPECT_GT(x99, -p.geom.gap / 3.0 - 1e-9);
}

class PullInSweep : public ::testing::TestWithParam<double> {};

TEST_P(PullInSweep, TransientSnapsOnlyAbovePullIn) {
  // Drive the resonator system with a slow ramp to fraction*V_pi; the plate
  // must snap in (hit the clamp region) iff fraction > 1.
  ResonatorParams p;
  p.damping = 2.0;  // heavy damping: quasi-static approach, no dynamic pull-in
  const double frac = GetParam();
  const double v_target = frac * pull_in_voltage(p);
  auto sys = build_resonator_system(
      p, TransducerModelKind::behavioral,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {80e-3, v_target}, {1.0, v_target}}));
  spice::TranOptions opts;
  opts.tstop = 120e-3;
  opts.dt_max = 2e-4;
  const auto res = api::transient(*sys.circuit, opts);
  ASSERT_TRUE(res.ok) << res.error;
  const double x_end = res.sample(120e-3, sys.node_disp);
  if (frac < 1.0) {
    EXPECT_GT(x_end, -p.geom.gap / 3.0 - 2e-6) << "snapped below pull-in";
  } else {
    EXPECT_LT(x_end, -0.5 * p.geom.gap) << "failed to snap above pull-in";
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, PullInSweep, ::testing::Values(0.8, 0.95, 1.15));

TEST(PullIn, LinearizedModelNeverSnaps) {
  // The equivalent-circuit model deflects proportionally at any voltage —
  // qualitatively wrong near the instability (the paper's core argument).
  ResonatorParams p;
  p.damping = 2.0;
  const double v_target = 1.3 * pull_in_voltage(p);
  auto sys = build_resonator_system(
      p, TransducerModelKind::linearized,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {80e-3, v_target}, {1.0, v_target}}));
  spice::TranOptions opts;
  opts.tstop = 120e-3;
  const auto res = api::transient(*sys.circuit, opts);
  ASSERT_TRUE(res.ok) << res.error;
  const double x_end = res.sample(120e-3, sys.node_disp);
  // Gamma_sec * V / k: finite, linear in V.
  const double x_expected = -gamma_secant(p) * v_target / p.stiffness;
  EXPECT_NEAR(x_end, x_expected, std::abs(x_expected) * 0.05);
}

}  // namespace
}  // namespace usys::core
