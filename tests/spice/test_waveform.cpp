// Waveform value/breakpoint semantics (SPICE-compatible subset).
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "spice/waveform.hpp"

namespace usys::spice {
namespace {

TEST(Waveform, DcIsConstant) {
  DcWave w(3.3);
  EXPECT_DOUBLE_EQ(w.value(0.0), 3.3);
  EXPECT_DOUBLE_EQ(w.value(1e9), 3.3);
}

TEST(Waveform, PulseShape) {
  PulseWave w(0.0, 5.0, 1e-3, 1e-4, 2e-4, 1e-3);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.5e-3), 0.0);          // before delay
  EXPECT_NEAR(w.value(1.05e-3), 2.5, 1e-9);        // mid rise
  EXPECT_DOUBLE_EQ(w.value(1.5e-3), 5.0);          // plateau
  EXPECT_NEAR(w.value(2.2e-3), 2.5, 1e-9);         // mid fall
  EXPECT_DOUBLE_EQ(w.value(3e-3), 0.0);            // after
}

TEST(Waveform, PulsePeriodic) {
  PulseWave w(0.0, 1.0, 0.0, 1e-4, 1e-4, 3e-4, 1e-3);
  EXPECT_DOUBLE_EQ(w.value(2e-4), 1.0);
  EXPECT_DOUBLE_EQ(w.value(1.2e-3), 1.0);  // second cycle plateau
}

TEST(Waveform, PulseZeroEdgeClamped) {
  // Zero rise/fall is clamped to a tiny slope instead of a discontinuity.
  PulseWave w(0.0, 1.0, 0.0, 0.0, 0.0, 1e-3);
  EXPECT_NEAR(w.value(0.5e-3), 1.0, 1e-9);
}

TEST(Waveform, NegativeTimingRejected) {
  EXPECT_THROW(PulseWave(0, 1, 0, -1e-3, 0, 1e-3), std::invalid_argument);
}

TEST(Waveform, SinValue) {
  SinWave w(1.0, 2.0, 100.0);
  EXPECT_NEAR(w.value(0.0), 1.0, 1e-12);
  EXPECT_NEAR(w.value(2.5e-3), 3.0, 1e-9);  // quarter period: sin = 1
}

TEST(Waveform, SinDelayAndDamping) {
  SinWave w(0.0, 1.0, 100.0, 1e-3, 50.0);
  EXPECT_DOUBLE_EQ(w.value(0.5e-3), 0.0);  // before delay
  const double t = 1e-3 + 2.5e-3;
  EXPECT_NEAR(w.value(t), std::exp(-2.5e-3 * 50.0), 1e-9);
}

TEST(Waveform, PwlInterpolatesAndClamps) {
  PwlWave w({{0.0, 0.0}, {1.0, 10.0}, {2.0, -10.0}});
  EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.5), 5.0);
  EXPECT_DOUBLE_EQ(w.value(1.5), 0.0);
  EXPECT_DOUBLE_EQ(w.value(3.0), -10.0);
}

TEST(Waveform, PwlRejectsNonMonotonicTime) {
  EXPECT_THROW(PwlWave({{1.0, 0.0}, {0.5, 1.0}}), std::invalid_argument);
  EXPECT_THROW(PwlWave({}), std::invalid_argument);
}

TEST(Waveform, PwlBreakpoints) {
  PwlWave w({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}});
  std::vector<double> bp;
  w.breakpoints(bp);
  EXPECT_EQ(bp.size(), 3u);
}

TEST(Waveform, Fig5PulseTrainLevels) {
  const auto w = make_fig5_pulse_train({5.0, 10.0, 15.0}, 0.18, 2e-3, 2e-3);
  // Mid-plateau samples of the three slots.
  EXPECT_NEAR(w->value(0.03), 5.0, 1e-9);
  EXPECT_NEAR(w->value(0.09), 10.0, 1e-9);
  EXPECT_NEAR(w->value(0.15), 15.0, 1e-9);
  // Gaps between pulses return to zero.
  EXPECT_NEAR(w->value(0.0601), 0.0, 1e-9);
  EXPECT_NEAR(w->value(0.1201), 0.0, 1e-9);
}

}  // namespace
}  // namespace usys::spice
