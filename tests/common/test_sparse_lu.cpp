// SparseLu (Gilbert–Peierls with partial pivoting + refactorization)
// against the dense lu_solve oracle: random round-trips, pivoting-required
// cases, singular detection, complex solves, and pattern reuse.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>

#include "common/matrix.hpp"
#include "common/sparse_lu.hpp"

namespace usys {
namespace {

struct Pattern {
  int n = 0;
  std::vector<int> row_ptr, col_idx;
};

/// Band of half-width 2 plus ~9 % random off-band entries.
Pattern random_pattern(int n, std::mt19937& rng) {
  Pattern p;
  p.n = n;
  p.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (std::abs(r - c) <= 2 || rng() % 11 == 0) p.col_idx.push_back(c);
    }
    p.row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<int>(p.col_idx.size());
  }
  return p;
}

/// Random values on the pattern, made diagonally dominant (keeps the
/// condition number low so sparse and dense solutions agree tightly).
std::vector<double> make_dominant(const Pattern& p, std::mt19937& rng) {
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  std::vector<double> vals(p.col_idx.size());
  for (int r = 0; r < p.n; ++r) {
    double off = 0.0;
    int diag = -1;
    for (int s = p.row_ptr[r]; s < p.row_ptr[r + 1]; ++s) {
      vals[static_cast<std::size_t>(s)] = ud(rng);
      if (p.col_idx[static_cast<std::size_t>(s)] == r) {
        diag = s;
      } else {
        off += std::abs(vals[static_cast<std::size_t>(s)]);
      }
    }
    vals[static_cast<std::size_t>(diag)] = off + 1.0;
  }
  return vals;
}

DMatrix to_dense(const Pattern& p, const std::vector<double>& vals) {
  DMatrix a(static_cast<std::size_t>(p.n), static_cast<std::size_t>(p.n));
  for (int r = 0; r < p.n; ++r)
    for (int s = p.row_ptr[r]; s < p.row_ptr[r + 1]; ++s)
      a(static_cast<std::size_t>(r), static_cast<std::size_t>(p.col_idx[s])) =
          vals[static_cast<std::size_t>(s)];
  return a;
}

TEST(SparseLu, RandomRoundTripsMatchDenseLu) {
  std::mt19937 rng(1234);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  for (int n : {1, 2, 5, 23, 80}) {
    const Pattern p = random_pattern(n, rng);
    SparseLu<double> lu;
    lu.analyze(p.n, p.row_ptr, p.col_idx);
    const auto vals = make_dominant(p, rng);
    DMatrix a = to_dense(p, vals);
    DVector b(static_cast<std::size_t>(n));
    for (auto& v : b) v = ud(rng);
    DVector bd = b;
    lu.factor(vals);
    lu.solve(b);
    lu_solve(a, bd);
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(b[static_cast<std::size_t>(i)], bd[static_cast<std::size_t>(i)],
                  1e-10 * std::max(1.0, std::abs(bd[static_cast<std::size_t>(i)])))
          << "n=" << n << " i=" << i;
  }
}

TEST(SparseLu, PivotingRequiredZeroDiagonal) {
  // [[0 2 0], [1 0 0], [4 0 3]] — column 0 must pivot off the diagonal.
  const std::vector<int> rp{0, 2, 4, 6};
  const std::vector<int> ci{0, 1, 0, 2, 0, 2};
  const std::vector<double> vals{0.0, 2.0, 1.0, 0.0, 4.0, 3.0};
  SparseLu<double> lu;
  lu.analyze(3, rp, ci);
  lu.factor(vals);
  // Solve for x = (1, 2, 3): b = A x.
  DVector b{4.0, 1.0, 13.0};
  lu.solve(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
  EXPECT_NEAR(b[2], 3.0, 1e-12);
}

TEST(SparseLu, SingularMatrixThrowsLikeDense) {
  // Two identical rows: rank deficient.
  const std::vector<int> rp{0, 2, 4, 6};
  const std::vector<int> ci{0, 1, 0, 1, 1, 2};
  const std::vector<double> vals{1.0, 2.0, 1.0, 2.0, 1.0, 1.0};
  SparseLu<double> lu;
  lu.analyze(3, rp, ci);
  EXPECT_THROW(lu.factor(vals), SingularMatrixError);

  DMatrix a = to_dense({3, rp, ci}, vals);
  DVector b{1.0, 1.0, 1.0};
  EXPECT_THROW(lu_solve(a, b), SingularMatrixError);
}

TEST(SparseLu, StructurallyEmptyColumnThrows) {
  // Column 1 never appears: structurally singular.
  const std::vector<int> rp{0, 1, 2};
  const std::vector<int> ci{0, 0};
  const std::vector<double> vals{1.0, 2.0};
  SparseLu<double> lu;
  lu.analyze(2, rp, ci);
  EXPECT_THROW(lu.factor(vals), SingularMatrixError);
}

TEST(SparseLu, ComplexRoundTripMatchesDense) {
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const int n = 40;
  const Pattern p = random_pattern(n, rng);
  std::vector<std::complex<double>> vals(p.col_idx.size());
  ZMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    double off = 0.0;
    int diag = -1;
    for (int s = p.row_ptr[r]; s < p.row_ptr[r + 1]; ++s) {
      vals[static_cast<std::size_t>(s)] = {ud(rng), ud(rng)};
      if (p.col_idx[static_cast<std::size_t>(s)] == r) {
        diag = s;
      } else {
        off += std::abs(vals[static_cast<std::size_t>(s)]);
      }
    }
    vals[static_cast<std::size_t>(diag)] += off + 1.0;
    for (int s = p.row_ptr[r]; s < p.row_ptr[r + 1]; ++s)
      a(static_cast<std::size_t>(r), static_cast<std::size_t>(p.col_idx[s])) =
          vals[static_cast<std::size_t>(s)];
  }
  ZVector b(static_cast<std::size_t>(n));
  for (auto& v : b) v = {ud(rng), ud(rng)};
  ZVector bd = b;
  ZSparseLu lu;
  lu.analyze(p.n, p.row_ptr, p.col_idx);
  lu.factor(vals);
  lu.solve(b);
  lu_solve(a, bd);
  for (int i = 0; i < n; ++i)
    EXPECT_LT(std::abs(b[static_cast<std::size_t>(i)] - bd[static_cast<std::size_t>(i)]),
              1e-10);
}

TEST(SparseLu, PatternReuseWithChangedValuesKeepsSymbolicAtOne) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const int n = 60;
  const Pattern p = random_pattern(n, rng);
  SparseLu<double> lu;
  lu.analyze(p.n, p.row_ptr, p.col_idx);
  auto vals = make_dominant(p, rng);

  // 20 smooth value updates (Newton-iteration-like): the pivot order must
  // hold, so exactly one symbolic factorization serves them all.
  for (int iter = 0; iter < 20; ++iter) {
    DMatrix a = to_dense(p, vals);
    DVector b(static_cast<std::size_t>(n));
    for (auto& v : b) v = ud(rng);
    DVector bd = b;
    lu.factor(vals);
    lu.solve(b);
    lu_solve(a, bd);
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(b[static_cast<std::size_t>(i)], bd[static_cast<std::size_t>(i)],
                  1e-9 * std::max(1.0, std::abs(bd[static_cast<std::size_t>(i)])));
    for (auto& v : vals) v *= 1.0 + 0.01 * ud(rng);  // smooth perturbation
  }
  EXPECT_EQ(lu.symbolic_factorizations(), 1);
}

TEST(SparseLu, RepivotsWhenReusedPivotDegrades) {
  // Start with a matrix whose pivots sit on the diagonal, then swap the
  // dominance to the off-diagonal: the reused pivot order degrades and the
  // solver must transparently re-run the full pivoting factorization.
  const std::vector<int> rp{0, 2, 4};
  const std::vector<int> ci{0, 1, 0, 1};
  SparseLu<double> lu;
  lu.analyze(2, rp, ci);
  lu.factor({10.0, 1.0, 1.0, 10.0});
  DVector b{12.0, 21.0};  // x = (1, 2)
  lu.solve(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
  EXPECT_EQ(lu.symbolic_factorizations(), 1);

  lu.factor({1e-9, 1.0, 1.0, 1e-9});  // anti-diagonal dominance
  DVector b2{2.0 + 1e-9, 1.0 + 2e-9};  // x = (1, 2)
  lu.solve(b2);
  EXPECT_NEAR(b2[0], 1.0, 1e-9);
  EXPECT_NEAR(b2[1], 2.0, 1e-9);
  EXPECT_EQ(lu.symbolic_factorizations(), 2);
}

TEST(SparseLu, UsageErrors) {
  SparseLu<double> lu;
  EXPECT_THROW(lu.factor({1.0}), std::logic_error);
  DVector b{1.0};
  EXPECT_THROW(lu.solve(b), std::logic_error);
  lu.analyze(1, {0, 1}, {0});
  EXPECT_THROW(lu.factor({1.0, 2.0}), std::invalid_argument);  // wrong nnz
}

}  // namespace
}  // namespace usys
