// Monte Carlo sweep engine throughput (docs/sweeps.md): the counter-based
// RNG draw rate, statistical grid construction, stats accumulation +
// serialization, and the end-to-end MC operating-point sweep through the
// same api::run_sweep_point path the CLI and the server dispatch.
//
// The per-layer benches bound where a million-point tolerance study spends
// its time: draws and grid construction must be noise (tens of ns/point)
// next to the per-point circuit solve (~ms), and the stats distillation
// must stay linear in points. The exit summary prints points/s for the
// end-to-end sweep at 1 and 4 threads — the fleet-sizing number.
//
// CI smoke mode: --benchmark_min_time=0.02s --benchmark_format=json
//                --benchmark_out=BENCH_sweep_mc.json
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "common/rng.hpp"
#include "spice/stats.hpp"
#include "spice/sweep.hpp"

using namespace usys;

namespace {

/// The tolerance-analysis divider from docs/sweeps.md: two drawn
/// parameters, one .op, cheap enough that the sweep fabric overhead is
/// visible next to the solve.
const char kMcNetlist[] =
    "* mc divider\n"
    "V1 in 0 {vd}\n"
    "R1 in out {r}\n"
    "R2 out 0 1000\n"
    ".op\n"
    ".end\n";

std::vector<spice::ParamDist> mc_dists() {
  return {*spice::parse_dist_spec("r", "normal(1k,50)"),
          *spice::parse_dist_spec("vd", "uniform(4.5,5.5)")};
}

std::vector<spice::SweepPoint> mc_points(int n) {
  return spice::mc_grid({}, mc_dists(), {42, n});
}

/// One normal draw per iteration — the per-(point,param) cost of the
/// stateless RNG, inverse-CDF transform included.
void BM_RngNormalDraw(benchmark::State& state) {
  const std::uint64_t key = rng_hash_name("r");
  std::uint64_t counter = 0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += rng_normal(42, counter++, key, 1000.0, 50.0);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_RngNormalDraw)->Unit(benchmark::kNanosecond);

/// Building the composed statistical grid (draws included) for N points.
void BM_McGridBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto grid = mc_points(n);
    benchmark::DoNotOptimize(grid.data());
  }
  state.counters["points/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_McGridBuild)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

/// Distilling N synthetic outcomes into the stats JSONL document:
/// accumulation, sorted-exact quantiles, yield, %.17g serialization.
void BM_StatsDistill(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto grid = mc_points(n);
  std::vector<spice::SweepOutcome> outcomes(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    outcomes[i].ok = true;
    outcomes[i].metrics = {
        {"op:out", grid[i].value("vd") * 1000.0 /
                       (grid[i].value("r") + 1000.0)}};
  }
  spice::MeasureSpec m;
  m.label = "vout";
  m.metric = "op:out";
  m.lo = 2.2;
  m.has_lo = true;
  m.hi = 2.8;
  m.has_hi = true;
  for (auto _ : state) {
    spice::StatsRun run;  // default seed_text: GCC 12 -Wmaybe-uninitialized
                          // false-fires on assigning a literal here (-Werror CI)
    run.total_points = n;
    run.mc = n;
    run.measures = {m};
    for (std::size_t i = 0; i < grid.size(); ++i)
      run.add_outcome(static_cast<long>(i), grid[i], outcomes[i]);
    const std::string doc = run.to_jsonl();
    benchmark::DoNotOptimize(doc.data());
  }
  state.counters["points/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StatsDistill)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

/// One MC point end to end: substitute drawn params, parse, bind, solve
/// .op, distill metrics — the unit of work a sweep fans out.
void BM_McSweepPoint(benchmark::State& state) {
  const auto grid = mc_points(64);
  std::size_t i = 0;
  api::JobOptions opts;
  for (auto _ : state) {
    const auto out =
        api::run_sweep_point(kMcNetlist, grid[i++ % grid.size()], "bytecode",
                             opts, /*attempt=*/0);
    if (!out.ok) state.SkipWithError("sweep point failed");
    benchmark::DoNotOptimize(out.metrics.data());
  }
}
BENCHMARK(BM_McSweepPoint)->Unit(benchmark::kMicrosecond);

/// The full batch through SweepRunner: 256 MC points at 1 / 4 workers.
void BM_McSweepBatch(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto grid = mc_points(256);
  spice::SweepRunner runner(threads);
  api::JobOptions opts;
  int failures = 0;
  for (auto _ : state) {
    const auto results =
        runner.run(grid, [&](const spice::SweepPoint& p) {
          return api::run_sweep_point(kMcNetlist, p, "bytecode", opts, 0);
        });
    for (const auto& r : results) failures += r.ok ? 0 : 1;
  }
  if (failures > 0) state.SkipWithError("sweep points failed");
  state.counters["points/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(grid.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_McSweepBatch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

/// Direct wall-clock summary (independent of google-benchmark's repetition
/// policy): MC points/s at 1 vs 4 workers — the number that sizes a fleet.
void print_summary() {
  using clock = std::chrono::steady_clock;
  const auto grid = mc_points(256);
  api::JobOptions opts;
  std::printf("\n=== MC sweep throughput (256-point .op batch) ===\n");
  std::printf("(hardware concurrency: %u)\n", std::thread::hardware_concurrency());
  std::printf("%8s %14s %12s\n", "threads", "batch [ms]", "points/s");
  double serial_ms = 0.0;
  for (int threads : {1, 4}) {
    spice::SweepRunner runner(threads);
    auto run_once = [&] {
      const auto results =
          runner.run(grid, [&](const spice::SweepPoint& p) {
            return api::run_sweep_point(kMcNetlist, p, "bytecode", opts, 0);
          });
      benchmark::DoNotOptimize(results.data());
    };
    run_once();  // warm-up
    const auto t0 = clock::now();
    run_once();
    const double ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    if (threads == 1) serial_ms = ms;
    std::printf("%8d %14.2f %12.0f\n", threads, ms,
                1000.0 * static_cast<double>(grid.size()) / ms);
  }
  std::printf("\ndraws and grid construction are O(10ns-100ns)/point; the\n"
              "per-point parse+bind+solve dominates, so MC batches scale\n"
              "with workers (speedup needs physical cores; serial %0.2f ms).\n",
              serial_ms);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
