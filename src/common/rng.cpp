#include "common/rng.hpp"

#include <cmath>

namespace usys {

std::uint64_t rng_mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::uint64_t rng_hash_name(std::string_view name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;  // FNV prime
  }
  return h;
}

std::uint64_t rng_draw_u64(std::uint64_t seed, std::uint64_t counter,
                           std::uint64_t key) noexcept {
  // Absorb each word through a full avalanche before the next, so within
  // one (seed, key) stream the map counter -> value is injective.
  std::uint64_t h = 0x243f6a8885a308d3ull;  // pi fractional bits
  h = rng_mix64(h ^ seed);
  h = rng_mix64(h ^ counter);
  h = rng_mix64(h ^ key);
  return h;
}

double rng_uniform01(std::uint64_t seed, std::uint64_t counter,
                     std::uint64_t key) noexcept {
  // Top 53 bits -> [0, 1) on the canonical dyadic grid.
  return static_cast<double>(rng_draw_u64(seed, counter, key) >> 11) *
         0x1.0p-53;
}

double rng_uniform(std::uint64_t seed, std::uint64_t counter, std::uint64_t key,
                   double lo, double hi) noexcept {
  return lo + (hi - lo) * rng_uniform01(seed, counter, key);
}

double rng_normal(std::uint64_t seed, std::uint64_t counter, std::uint64_t key,
                  double mu, double sigma) noexcept {
  // Offset by half a grid step so p lies strictly inside (0, 1).
  double p = (static_cast<double>(rng_draw_u64(seed, counter, key) >> 11) +
              0.5) *
             0x1.0p-53;
  return mu + sigma * inverse_normal_cdf(p);
}

namespace {

// Standard-normal CDF via erfc (numerically stable in both tails).
double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x * 0.7071067811865475244);  // x / sqrt(2)
}

}  // namespace

double inverse_normal_cdf(double p) noexcept {
  if (!(p > 0.0 && p < 1.0)) {
    if (p == 0.0) return -HUGE_VAL;
    if (p == 1.0) return HUGE_VAL;
    return NAN;
  }

  // Acklam's rational approximation (relative error < 1.15e-9).
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;

  double x;
  if (p < plow) {
    double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    double q = p - 0.5;
    double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement against the exact CDF pushes the error to ~1 ulp.
  double e = normal_cdf(x) - p;
  double u = e * 2.5066282746310002 * std::exp(0.5 * x * x);  // e / pdf(x)
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

}  // namespace usys
