#include "core/netlist_ext.hpp"

#include "core/linearized.hpp"
#include "core/transducers.hpp"

namespace usys::core {

using spice::NetlistError;
using spice::param_or;
using spice::require_param;
using spice::XDeviceArgs;

namespace {

struct Pins {
  int ea, eb, mc, md;
};

Pins transducer_pins(XDeviceArgs& a) {
  if (a.pins.size() != 4)
    throw NetlistError(a.line, "transducer takes 4 pins: e+ e- mech_free mech_ref");
  return {a.node(a.pins[0], Nature::electrical), a.node(a.pins[1], Nature::electrical),
          a.node(a.pins[2], Nature::mechanical_translation),
          a.node(a.pins[3], Nature::mechanical_translation)};
}

}  // namespace

void register_transducer_devices(spice::NetlistParser& parser) {
  parser.register_xdevice("ETRANSV", [](XDeviceArgs& a) {
    const Pins p = transducer_pins(a);
    TransducerGeometry g;
    g.area = require_param(a, "a");
    g.gap = require_param(a, "d");
    g.eps_r = param_or(a, "er", 1.0);
    auto& dev = a.circuit->add<TransverseElectrostatic>(a.name, p.ea, p.eb, p.mc, p.md, g);
    dev.set_initial_displacement(param_or(a, "x0", 0.0));
  });

  parser.register_xdevice("ETRANSP", [](XDeviceArgs& a) {
    const Pins p = transducer_pins(a);
    TransducerGeometry g;
    g.depth = require_param(a, "h");
    g.length = require_param(a, "l");
    g.gap = require_param(a, "d");
    g.eps_r = param_or(a, "er", 1.0);
    auto& dev = a.circuit->add<ParallelElectrostatic>(a.name, p.ea, p.eb, p.mc, p.md, g);
    dev.set_initial_displacement(param_or(a, "x0", 0.0));
  });

  parser.register_xdevice("EMAG", [](XDeviceArgs& a) {
    const Pins p = transducer_pins(a);
    TransducerGeometry g;
    g.area = require_param(a, "a");
    g.gap = require_param(a, "d");
    g.turns = static_cast<int>(require_param(a, "n"));
    auto& dev =
        a.circuit->add<ElectromagneticTransducer>(a.name, p.ea, p.eb, p.mc, p.md, g);
    dev.set_initial_displacement(param_or(a, "x0", 0.0));
  });

  parser.register_xdevice("EDYN", [](XDeviceArgs& a) {
    const Pins p = transducer_pins(a);
    TransducerGeometry g;
    g.turns = static_cast<int>(require_param(a, "n"));
    g.radius = require_param(a, "r");
    g.b_field = require_param(a, "b");
    a.circuit->add<ElectrodynamicTransducer>(a.name, p.ea, p.eb, p.mc, p.md, g);
  });

  parser.register_xdevice("LINTRANSV", [](XDeviceArgs& a) {
    const Pins p = transducer_pins(a);
    ResonatorParams rp;
    rp.geom.area = require_param(a, "a");
    rp.geom.gap = require_param(a, "d");
    rp.geom.eps_r = param_or(a, "er", 1.0);
    rp.v_bias = require_param(a, "v0");
    rp.mass = require_param(a, "m");
    rp.stiffness = require_param(a, "k");
    rp.damping = param_or(a, "alpha", 40e-3);
    LinearizationOptions lo;
    lo.gamma = param_or(a, "secant", 1.0) != 0.0 ? GammaKind::secant : GammaKind::tangent;
    lo.include_spring_softening = param_or(a, "soften", 0.0) != 0.0;
    a.circuit->add<LinearizedTransverseElectrostatic>(a.name, p.ea, p.eb, p.mc, p.md,
                                                      linearize_transverse(rp, lo));
  });
}

spice::NetlistParser make_full_parser() {
  spice::NetlistParser parser;
  register_transducer_devices(parser);
  return parser;
}

}  // namespace usys::core
