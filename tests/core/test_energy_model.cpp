// The mechanized energy-method (paper steps 1-4): symbolic derivation of
// Table 3 from Table 2, reciprocity, and HDL generation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "core/energy_model.hpp"
#include "core/reference.hpp"
#include "hdl/elaborate.hpp"
#include "hdl/parser.hpp"

namespace usys::core {
namespace {

sym::Env transverse_env(double v, double x) {
  // q = C(x) V translates the V-form test point into the state form.
  TransducerGeometry g;
  const double q = capacitance_transverse(g, x) * v;
  return {{"q", q},      {"x", x},          {"d", g.gap}, {"A", g.area},
          {"er", g.eps_r}, {"e0", g.eps0}};
}

TEST(EnergyModel, TransverseVoltageMatchesTable3) {
  const EnergyModel m = make_transverse_energy_model();
  // dW/dq must equal V at the test point (definition of the state form).
  for (double v : {1.0, 5.0, 10.0, 15.0}) {
    for (double x : {-2e-5, 0.0, 4e-5}) {
      EXPECT_NEAR(m.eval_port("elec", transverse_env(v, x)), v, std::abs(v) * 1e-12);
    }
  }
}

TEST(EnergyModel, TransverseForceMatchesTable3) {
  const EnergyModel m = make_transverse_energy_model();
  TransducerGeometry g;
  for (double v : {5.0, 10.0, 15.0}) {
    for (double x : {-2e-5, 0.0, 4e-5}) {
      // Absorbed mechanical flow = dW/dx = -force_on_plate.
      const double absorbed = m.eval_port("mech", transverse_env(v, x));
      EXPECT_NEAR(absorbed, -force_transverse(g, v, x), std::abs(absorbed) * 1e-10);
    }
  }
}

TEST(EnergyModel, ParallelForceMatchesTable3) {
  const EnergyModel m = make_parallel_energy_model();
  TransducerGeometry g;
  g.depth = 1e-3;
  g.length = 2e-3;
  g.gap = 1e-5;
  const double v = 10.0;
  const double x = 2e-4;
  const double q = capacitance_parallel(g, x) * v;
  const sym::Env env{{"q", q},  {"x", x},        {"d", g.gap},  {"h", g.depth},
                     {"l", g.length}, {"er", g.eps_r}, {"e0", g.eps0}};
  EXPECT_NEAR(m.eval_port("elec", env), v, 1e-9);
  EXPECT_NEAR(m.eval_port("mech", env), -force_parallel(g, v),
              std::abs(force_parallel(g, v)) * 1e-10);
}

TEST(EnergyModel, ElectromagneticFlowAndForceMatchTable3) {
  const EnergyModel m = make_electromagnetic_energy_model();
  TransducerGeometry g;
  g.area = 1e-4;
  g.gap = 1e-3;
  g.turns = 100;
  const double i = 0.5;
  const double x = 1e-4;
  const double lambda = inductance_electromagnetic(g, x) * i;
  const sym::Env env{{"lambda", lambda}, {"x", x},
                     {"d", g.gap},       {"A", g.area},
                     {"N", static_cast<double>(g.turns)}, {"mu0", g.mu0}};
  // dW/dlambda = i (momentum-port flow).
  EXPECT_NEAR(m.eval_port("elec", env), i, std::abs(i) * 1e-10);
  EXPECT_NEAR(m.eval_port("mech", env), -force_electromagnetic(g, i, x),
              std::abs(force_electromagnetic(g, i, x)) * 1e-10);
}

TEST(EnergyModel, ElectrodynamicForceMatchesTable3) {
  const EnergyModel m = make_electrodynamic_energy_model();
  TransducerGeometry g;
  g.turns = 100;
  g.radius = 5e-3;
  g.b_field = 1.0;
  const double i = 0.3;
  const double x = 2e-3;
  const double t_fac = transduction_electrodynamic(g);
  const double lambda = inductance_electrodynamic(g) * i + t_fac * x;
  const sym::Env env{{"lambda", lambda}, {"x", x},
                     {"N", static_cast<double>(g.turns)}, {"r", g.radius},
                     {"B", g.b_field},   {"mu0", g.mu0}};
  EXPECT_NEAR(m.eval_port("elec", env), i, std::abs(i) * 1e-9);
  // Absorbed mech flow = -T i; delivered Lorentz force = +T i.
  EXPECT_NEAR(m.eval_port("mech", env), -force_electrodynamic(g, i),
              std::abs(force_electrodynamic(g, i)) * 1e-9);
}

TEST(EnergyModel, ReciprocityHoldsForAllModels) {
  const sym::Env probe{{"q", 1e-10},  {"lambda", 1e-4}, {"x", 1e-5},
                       {"d", 1.5e-4}, {"A", 1e-4},      {"er", 1.0},
                       {"e0", kEps0Paper}, {"h", 1e-3}, {"l", 2e-3},
                       {"N", 100.0},  {"r", 5e-3},      {"B", 1.0},
                       {"mu0", kMu0Classic}};
  EXPECT_LT(make_transverse_energy_model().reciprocity_residual(probe), 1e-12);
  EXPECT_LT(make_parallel_energy_model().reciprocity_residual(probe), 1e-12);
  EXPECT_LT(make_electromagnetic_energy_model().reciprocity_residual(probe), 1e-12);
  EXPECT_LT(make_electrodynamic_energy_model().reciprocity_residual(probe), 1e-12);
}

TEST(EnergyModel, GeneratedHdlParsesAndElaborates) {
  const EnergyModel m = make_transverse_energy_model();
  const std::string src = m.generate_hdl({"A", "d", "er", "e0"});
  EXPECT_NE(src.find("ENTITY etransverse"), std::string::npos);
  EXPECT_NE(src.find("integ(S)"), std::string::npos);
  EXPECT_NE(src.find("ddt(V)"), std::string::npos);
  hdl::DesignUnit unit = hdl::parse(src);
  EXPECT_NO_THROW(hdl::elaborate(
      std::move(unit), "etransverse",
      {{"A", 1e-4}, {"d", 1.5e-4}, {"er", 1.0}, {"e0", kEps0Paper}}));
}

TEST(EnergyModel, GeneratedHdlForMomentumPort) {
  const EnergyModel m = make_electromagnetic_energy_model();
  const std::string src = m.generate_hdl({"A", "d", "N", "mu0"});
  EXPECT_NE(src.find(".v %= ddt("), std::string::npos);
  hdl::DesignUnit unit = hdl::parse(src);
  EXPECT_NO_THROW(hdl::elaborate(
      std::move(unit), "emagnetic",
      {{"A", 1e-4}, {"d", 1e-3}, {"N", 100.0}, {"mu0", kMu0Classic}}));
}

TEST(EnergyModel, UnknownPortThrows) {
  const EnergyModel m = make_transverse_energy_model();
  EXPECT_THROW((void)m.derived_for("acoustic"), std::out_of_range);
}

}  // namespace
}  // namespace usys::core
