#include "spice/lint.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/strings.hpp"
#include "common/union_find.hpp"
#include "spice/types.hpp"

namespace usys::spice {

const char* const kAllLintRules[] = {
    // Level 1: circuit / MNA structural analyzer (this file)
    "float-node", "no-dc-path", "isource-cutset", "vloop", "vloop-dc",
    "struct-singular", "param-invalid", "param-zero", "param-negative",
    "param-magnitude", "array-unconnected",
    // Level 2: HDL bytecode verifier (hdl/verify.cpp), re-surfaced per device
    "hdl-layout", "hdl-operand-bounds", "hdl-def-use", "hdl-grad-dropped",
    "hdl-dead-code", "hdl-const-stamp", "hdl-site-mismatch", nullptr};

const char* to_string(LintSeverity sev) noexcept {
  return sev == LintSeverity::error ? "error" : "warning";
}

int LintReport::error_count() const noexcept {
  int n = 0;
  for (const auto& d : diags) {
    if (d.severity == LintSeverity::error) ++n;
  }
  return n;
}

int LintReport::warning_count() const noexcept {
  return static_cast<int>(diags.size()) - error_count();
}

std::string LintReport::to_text() const {
  std::string out;
  for (const auto& d : diags) {
    out += to_string(d.severity);
    out += "[" + d.rule + "] " + d.entity;
    if (d.line > 0) out += str_format(" (line %d)", d.line);
    out += ": " + d.message + "\n";
  }
  out += str_format("lint: %d error(s), %d warning(s)\n", error_count(), warning_count());
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string LintReport::to_json() const {
  std::string out = "{\"findings\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const auto& d = diags[i];
    if (i > 0) out += ", ";
    out += str_format("{\"severity\": \"%s\", \"rule\": \"%s\", \"entity\": \"%s\", "
                      "\"line\": %d, \"message\": \"%s\"}",
                      to_string(d.severity), json_escape(d.rule).c_str(),
                      json_escape(d.entity).c_str(), d.line,
                      json_escape(d.message).c_str());
  }
  out += str_format("], \"errors\": %d, \"warnings\": %d}\n", error_count(),
                    warning_count());
  return out;
}

std::string LintReport::error_summary() const {
  std::string out;
  for (const auto& d : diags) {
    if (d.severity != LintSeverity::error) continue;
    if (!out.empty()) out += "; ";
    out += "[" + d.rule + "] " + d.entity;
    if (d.line > 0) out += str_format(" (line %d)", d.line);
    out += ": " + d.message;
  }
  return out;
}

// ---------------------------------------------------------------------------
// LintSink
// ---------------------------------------------------------------------------

void LintSink::edge(int node_a, int node_b, LintEdgeKind kind) {
  edges_.push_back({node_a, node_b, kind, current_device_});
}

void LintSink::footprint_clique(const Device& dev, LintEdgeKind kind) {
  scratch_.clear();
  if (!dev.stamp_footprint(scratch_)) return;
  const int n_nodes = circuit_->node_count();
  std::vector<int> pins;
  for (const int u : scratch_) {
    if (u < n_nodes) pins.push_back(u);  // node unknowns and ground (-1)
  }
  std::sort(pins.begin(), pins.end());
  pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
  for (std::size_t i = 0; i + 1 < pins.size(); ++i) {
    for (std::size_t j = i + 1; j < pins.size(); ++j) {
      edge(pins[i], pins[j], kind);
    }
  }
}

void LintSink::report(LintSeverity sev, std::string rule, std::string message) {
  LintDiag d;
  d.severity = sev;
  d.rule = std::move(rule);
  d.entity = current_ptr_ != nullptr ? "device '" + current_ptr_->name() + "'" : "circuit";
  d.line = current_ptr_ != nullptr ? current_ptr_->netlist_line() : 0;
  d.message = std::move(message);
  diags_->push_back(std::move(d));
}

void LintSink::check_value(const char* quantity, double value, LintSeverity zero_sev) {
  if (!parameters_) return;
  if (!std::isfinite(value)) {
    report(LintSeverity::error, "param-invalid",
           str_format("%s is not finite (%g)", quantity, value));
  } else if (value == 0.0) {
    report(zero_sev, "param-zero",
           str_format("%s is zero%s", quantity,
                      zero_sev == LintSeverity::error
                          ? " — the stamp divides by it"
                          : ""));
  } else if (value < 0.0) {
    report(LintSeverity::warning, "param-negative",
           str_format("%s is negative (%g) — only meaningful for idealized "
                      "compensation elements",
                      quantity, value));
  }
}

void LintSink::check_magnitude(const char* quantity, double value, double lo, double hi) {
  if (!parameters_) return;
  if (!std::isfinite(value) || value == 0.0) return;  // handled by check_value
  const double mag = std::fabs(value);
  if (mag < lo || mag > hi) {
    report(LintSeverity::warning, "param-magnitude",
           str_format("%s magnitude %g is outside the plausible range [%g, %g] — "
                      "check the engineering suffix",
                      quantity, value, lo, hi));
  }
}

// Default device topology: conservative conductive clique over the stamp
// footprint's node unknowns. Devices whose coupling is source-like or purely
// reactive override this (devices_passive/source/controlled, HdlDevice).
void Device::lint(LintSink& sink) const { sink.footprint_clique(*this); }

// ---------------------------------------------------------------------------
// The analyzer
// ---------------------------------------------------------------------------

namespace {

using usys::UnionFind;  // common/union_find.hpp, shared with the partitioner

/// Deterministic probe iterate: pseudo-random, bounded away from the special
/// values 0 and 1 so products/differences don't cancel structurally present
/// entries by luck. Two phases give two independent probes.
double probe_value(int i, int phase) {
  const double golden = 0.61803398874989484;
  const double frac = std::fmod(golden * static_cast<double>(i + 3 + 17 * phase), 1.0);
  return (phase == 0 ? 0.31 : -0.27) + 0.53 * frac;
}

}  // namespace

// Named (not anonymous-namespace) so the LintSink friend declaration applies.
class LintDriver {
 public:
  LintDriver(Circuit& circuit, const LintOptions& opts, LintReport& rep)
      : circuit_(circuit), opts_(opts), rep_(rep) {}

  void run() {
    circuit_.bind_all();
    collect();
    if (opts_.connectivity) {
      float_nodes();
      dc_paths();
      vloops();
      arrays();
    }
    if (opts_.matching) matching();
  }

 private:
  std::string node_entity(int id) const { return "node '" + circuit_.node_name(id) + "'"; }

  void diag(LintSeverity sev, const char* rule, std::string entity, int line,
            std::string message) {
    rep_.diags.push_back({sev, rule, std::move(entity), line, std::move(message)});
  }

  /// Joins up to opts_.max_names entity names, "+K more" for the rest.
  std::string name_list(const std::vector<std::string>& names) const {
    std::string out;
    const std::size_t cap = static_cast<std::size_t>(std::max(opts_.max_names, 1));
    for (std::size_t i = 0; i < names.size() && i < cap; ++i) {
      if (i > 0) out += ", ";
      out += names[i];
    }
    if (names.size() > cap) out += str_format(" (+%zu more)", names.size() - cap);
    return out;
  }

  void collect() {
    sink_.circuit_ = &circuit_;
    sink_.diags_ = &rep_.diags;
    sink_.parameters_ = opts_.parameters;
    sink_.hdl_ = opts_.hdl;
    const auto& devs = circuit_.devices();
    for (std::size_t i = 0; i < devs.size(); ++i) {
      sink_.current_device_ = static_cast<int>(i);
      sink_.current_ptr_ = devs[i].get();
      devs[i]->lint(sink_);
    }
    sink_.current_device_ = -1;
    sink_.current_ptr_ = nullptr;
  }

  /// Ground connectivity over ALL unknowns (nodes and branches): every
  /// device's footprint is one hyper-edge, plus the node-level lint edges.
  /// Components without the reference are floating islands.
  void float_nodes() {
    const int n = circuit_.unknown_count();
    const int ground = n;  // virtual reference vertex
    UnionFind uf(n + 1);
    std::vector<int> fp;
    for (const auto& dev : circuit_.devices()) {
      fp.clear();
      if (!dev->stamp_footprint(fp)) continue;
      for (std::size_t i = 1; i < fp.size(); ++i) {
        uf.unite(fp[i - 1] < 0 ? ground : fp[i - 1], fp[i] < 0 ? ground : fp[i]);
      }
    }
    for (const auto& e : sink_.edges_) {
      uf.unite(e.a < 0 ? ground : e.a, e.b < 0 ? ground : e.b);
    }

    std::map<int, std::vector<int>> comps;  // root -> member unknowns
    const int groot = uf.find(ground);
    for (int u = 0; u < n; ++u) {
      const int r = uf.find(u);
      if (r != groot) comps[r].push_back(u);
    }
    floating_.assign(static_cast<std::size_t>(n), 0);
    for (const auto& [root, members] : comps) {
      (void)root;
      std::vector<std::string> names;
      int line = 0;
      for (const int u : members) {
        floating_[static_cast<std::size_t>(u)] = 1;
        if (u < circuit_.node_count()) {
          names.push_back("'" + circuit_.node_name(u) + "'");
          if (line == 0) line = circuit_.node_line(u);
        }
      }
      const std::string entity =
          names.empty() ? std::string("circuit") : "node " + names.front();
      diag(LintSeverity::warning, "float-node", entity, line,
           str_format("%zu unknown(s) form an island with no connection to "
                      "ground/reference: ",
                      members.size()) +
               (names.empty() ? std::string("(branch unknowns only)") : name_list(names)) +
               " — only the gmin diagonal anchors them");
    }
  }

  /// Classic DC-path check over the node graph: conductive, vsource, and
  /// vsource_dc couplings conduct at DC; isource and reactive don't. Nodes
  /// already reported floating are skipped (one finding per defect).
  void dc_paths() {
    const int n = circuit_.node_count();
    const int ground = n;
    UnionFind uf(n + 1);
    for (const auto& e : sink_.edges_) {
      if (e.kind == LintEdgeKind::conductive || e.kind == LintEdgeKind::vsource ||
          e.kind == LintEdgeKind::vsource_dc) {
        uf.unite(e.a < 0 ? ground : e.a, e.b < 0 ? ground : e.b);
      }
    }
    std::map<int, std::vector<int>> comps;
    const int groot = uf.find(ground);
    for (int u = 0; u < n; ++u) {
      const int r = uf.find(u);
      if (r != groot) comps[r].push_back(u);
    }
    // Which components have an incident current source?
    std::set<int> driven;
    for (const auto& e : sink_.edges_) {
      if (e.kind != LintEdgeKind::isource) continue;
      for (const int v : {e.a, e.b}) {
        if (v >= 0 && uf.find(v) != groot) driven.insert(uf.find(v));
      }
    }
    for (const auto& [root, members] : comps) {
      const bool all_floating =
          std::all_of(members.begin(), members.end(), [&](int u) {
            return u < static_cast<int>(floating_.size()) &&
                   floating_[static_cast<std::size_t>(u)] != 0;
          });
      if (all_floating) continue;  // already reported by float-node
      std::vector<std::string> names;
      for (const int u : members) names.push_back("'" + circuit_.node_name(u) + "'");
      const int line = circuit_.node_line(members.front());
      if (driven.count(root) != 0U) {
        diag(LintSeverity::warning, "isource-cutset", node_entity(members.front()), line,
             "a current source drives node(s) " + name_list(names) +
                 " with no DC return path to ground — the DC point rides on gmin "
                 "(expect extreme efforts)");
      } else {
        diag(LintSeverity::warning, "no-dc-path", node_entity(members.front()), line,
             "node(s) " + name_list(names) +
                 " have no DC path to ground (capacitively/reactively isolated); "
                 "the DC point is defined only by gmin");
      }
    }
  }

  /// Voltage-source loop detection: a vsource edge closing a cycle in the
  /// vsource-edge graph makes every analysis singular (error); closing one
  /// only after adding the DC-shorting inductor/spring edges is singular
  /// only at DC (warning).
  void vloops() {
    const int n = circuit_.node_count();
    const int ground = n;
    UnionFind uf(n + 1);
    const auto& devs = circuit_.devices();
    const auto dev_of = [&](int idx) -> const Device* {
      return idx >= 0 && idx < static_cast<int>(devs.size()) ? devs[static_cast<std::size_t>(idx)].get()
                                                             : nullptr;
    };
    for (const auto& e : sink_.edges_) {
      if (e.kind != LintEdgeKind::vsource) continue;
      if (!uf.unite(e.a < 0 ? ground : e.a, e.b < 0 ? ground : e.b)) {
        const Device* d = dev_of(e.device);
        diag(LintSeverity::error, "vloop",
             d != nullptr ? "device '" + d->name() + "'" : "circuit",
             d != nullptr ? d->netlist_line() : 0,
             "closes a loop of voltage-defined elements — the MNA system is "
             "singular in every analysis");
      }
    }
    for (const auto& e : sink_.edges_) {
      if (e.kind != LintEdgeKind::vsource_dc) continue;
      if (!uf.unite(e.a < 0 ? ground : e.a, e.b < 0 ? ground : e.b)) {
        const Device* d = dev_of(e.device);
        diag(LintSeverity::warning, "vloop-dc",
             d != nullptr ? "device '" + d->name() + "'" : "circuit",
             d != nullptr ? d->netlist_line() : 0,
             "closes a DC loop of voltage-defined elements through "
             "inductors/springs — the DC current split is indeterminate "
             "(transient/AC are fine)");
      }
    }
  }

  /// `.array` / TRANSARRAY cells that share no non-ground node with any
  /// device outside their own cell: the cell simulates, but it is
  /// electrically/mechanically severed from the rest of the array.
  void arrays() {
    const auto& devs = circuit_.devices();
    struct NodeOwner {
      long first = -2;  ///< owner id of first sighting (-2 = unseen)
      bool shared = false;
    };
    std::vector<NodeOwner> owners(static_cast<std::size_t>(circuit_.node_count()));
    // Owner id: -1 for loose devices, a dense id per (array, cell) otherwise.
    std::map<std::pair<std::string, int>, long> cell_ids;
    std::vector<long> owner_of(devs.size(), -1);
    for (std::size_t i = 0; i < devs.size(); ++i) {
      if (devs[i]->array_name().empty()) continue;
      const auto key = std::make_pair(devs[i]->array_name(), devs[i]->array_cell());
      const auto [it, inserted] = cell_ids.emplace(key, static_cast<long>(cell_ids.size()));
      (void)inserted;
      owner_of[i] = it->second;
    }
    if (cell_ids.empty()) return;

    std::vector<std::vector<int>> cell_nodes(cell_ids.size());
    std::vector<int> first_dev(cell_ids.size(), -1);
    std::vector<int> fp;
    for (std::size_t i = 0; i < devs.size(); ++i) {
      fp.clear();
      if (!devs[i]->stamp_footprint(fp)) continue;
      const long owner = owner_of[i];
      for (const int u : fp) {
        if (u < 0 || u >= circuit_.node_count()) continue;
        NodeOwner& rec = owners[static_cast<std::size_t>(u)];
        if (rec.first == -2) {
          rec.first = owner;
        } else if (rec.first != owner) {
          rec.shared = true;
        }
        if (owner >= 0) {
          auto& list = cell_nodes[static_cast<std::size_t>(owner)];
          if (std::find(list.begin(), list.end(), u) == list.end()) list.push_back(u);
          if (first_dev[static_cast<std::size_t>(owner)] < 0)
            first_dev[static_cast<std::size_t>(owner)] = static_cast<int>(i);
        }
      }
    }
    for (const auto& [key, id] : cell_ids) {
      const auto& nodes = cell_nodes[static_cast<std::size_t>(id)];
      if (nodes.empty()) continue;
      const bool connected = std::any_of(nodes.begin(), nodes.end(), [&](int u) {
        return owners[static_cast<std::size_t>(u)].shared;
      });
      if (connected) continue;
      const Device* d = devs[static_cast<std::size_t>(first_dev[static_cast<std::size_t>(id)])].get();
      diag(LintSeverity::warning, "array-unconnected", "device '" + d->name() + "'",
           d->netlist_line(),
           str_format("array '%s' cell %d shares no non-ground node with the rest of "
                      "the circuit — a rail or chain connection is probably missing",
                      key.first.c_str(), key.second));
    }
  }

  /// Structural-singularity prediction: maximum bipartite row/column matching
  /// on the PROBED stamp pattern. Each device is evaluated twice at
  /// deterministic pseudo-random iterates in block-capture mode, so the
  /// matched pattern is the true Jf (and Jf+Jq) structure — the compiled CSR
  /// pattern is a conservative superset (full footprint blocks) that would
  /// make every matching trivially perfect. The always-on gmin diagonal is
  /// included on node rows, mirroring the solver; an unmatched row therefore
  /// means a zero pivot no gmin can rescue.
  void matching() {
    const int n = circuit_.unknown_count();
    if (n == 0) return;
    const auto& devs = circuit_.devices();
    std::vector<int> fp;
    for (const auto& dev : devs) {
      fp.clear();
      if (!dev->stamp_footprint(fp)) return;  // dense-only device: no pattern to probe
    }

    std::vector<std::vector<int>> adj_dc(static_cast<std::size_t>(n));
    std::vector<std::vector<int>> adj_tr(static_cast<std::size_t>(n));
    branch_owner_.assign(static_cast<std::size_t>(n), -1);

    DVector x1(static_cast<std::size_t>(n));
    DVector x2(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      x1[static_cast<std::size_t>(i)] = probe_value(i, 0);
      x2[static_cast<std::size_t>(i)] = probe_value(i, 1);
    }

    std::vector<int> local_of(static_cast<std::size_t>(n), -1);
    std::vector<int> slots;
    std::vector<double> jf;
    std::vector<double> jq;
    std::vector<double> fl;
    std::vector<double> ql;
    std::vector<char> mf;
    std::vector<char> mq;
    for (std::size_t di = 0; di < devs.size(); ++di) {
      fp.clear();
      (void)devs[di]->stamp_footprint(fp);
      std::sort(fp.begin(), fp.end());
      fp.erase(std::unique(fp.begin(), fp.end()), fp.end());
      if (!fp.empty() && fp.front() < 0) fp.erase(fp.begin());  // drop ground
      const int k = static_cast<int>(fp.size());
      if (k == 0) continue;
      for (int i = 0; i < k; ++i) {
        local_of[static_cast<std::size_t>(fp[static_cast<std::size_t>(i)])] = i;
        if (fp[static_cast<std::size_t>(i)] >= circuit_.node_count() &&
            branch_owner_[static_cast<std::size_t>(fp[static_cast<std::size_t>(i)])] < 0) {
          branch_owner_[static_cast<std::size_t>(fp[static_cast<std::size_t>(i)])] =
              static_cast<int>(di);
        }
      }
      slots.resize(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
      for (int s = 0; s < k * k; ++s) slots[static_cast<std::size_t>(s)] = s;
      mf.assign(static_cast<std::size_t>(k) * static_cast<std::size_t>(k), 0);
      mq.assign(static_cast<std::size_t>(k) * static_cast<std::size_t>(k), 0);

      for (const DVector* x : {&x1, &x2}) {
        jf.assign(static_cast<std::size_t>(k) * static_cast<std::size_t>(k), 0.0);
        jq.assign(static_cast<std::size_t>(k) * static_cast<std::size_t>(k), 0.0);
        fl.assign(static_cast<std::size_t>(k), 0.0);
        ql.assign(static_cast<std::size_t>(k), 0.0);
        SparseStampSink sink;
        sink.local_of = local_of.data();
        sink.slots = slots.data();
        sink.k = k;
        sink.jf_vals = jf.data();
        sink.jq_vals = jq.data();
        sink.f_local = fl.data();
        sink.q_local = ql.data();
        EvalCtx ctx;
        ctx.mode = AnalysisMode::dc;
        ctx.x = x;
        ctx.sparse = &sink;
        devs[di]->evaluate(ctx);
        for (int s = 0; s < k * k; ++s) {
          // NaN counts as structurally present (NaN != 0.0 is true).
          if (jf[static_cast<std::size_t>(s)] != 0.0) mf[static_cast<std::size_t>(s)] = 1;
          if (jq[static_cast<std::size_t>(s)] != 0.0) mq[static_cast<std::size_t>(s)] = 1;
        }
      }
      for (int i = 0; i < k; ++i) {
        for (int j = 0; j < k; ++j) {
          const int s = i * k + j;
          const int gi = fp[static_cast<std::size_t>(i)];
          const int gj = fp[static_cast<std::size_t>(j)];
          if (mf[static_cast<std::size_t>(s)] != 0) adj_dc[static_cast<std::size_t>(gi)].push_back(gj);
          if (mf[static_cast<std::size_t>(s)] != 0 || mq[static_cast<std::size_t>(s)] != 0)
            adj_tr[static_cast<std::size_t>(gi)].push_back(gj);
        }
      }
      for (const int u : fp) local_of[static_cast<std::size_t>(u)] = -1;
    }

    // gmin anchors every node-row diagonal in both regimes.
    for (int r = 0; r < circuit_.node_count(); ++r) {
      adj_dc[static_cast<std::size_t>(r)].push_back(r);
      adj_tr[static_cast<std::size_t>(r)].push_back(r);
    }
    for (auto* adj : {&adj_dc, &adj_tr}) {
      for (auto& row : *adj) {
        std::sort(row.begin(), row.end());
        row.erase(std::unique(row.begin(), row.end()), row.end());
      }
    }

    const std::vector<int> un_tr = unmatched_rows(adj_tr);
    if (!un_tr.empty()) {
      report_unmatched(un_tr, "in every analysis (the Jf+Jq pattern admits no perfect "
                              "row/column matching even with gmin)");
      return;  // the DC verdict would be implied noise
    }
    const std::vector<int> un_dc = unmatched_rows(adj_dc);
    if (!un_dc.empty()) {
      report_unmatched(un_dc, "at DC (the Jf pattern admits no perfect row/column "
                              "matching even with gmin; transient/AC are structurally "
                              "fine)");
    }
  }

  /// Hopcroft–Karp maximum bipartite matching, O(E*sqrt(V)). Kuhn's
  /// algorithm hits its O(V*E) worst case here: on branch-row chains
  /// (spring/inductor ladders) the greedy seed leaves every branch row
  /// unmatched and each augmenting path walks the whole chain, which turned
  /// the n ~ 3000 resonator-array lint into tens of milliseconds. The BFS
  /// layering bounds the phase count by sqrt(V) instead. Returns the
  /// unmatched rows.
  std::vector<int> unmatched_rows(const std::vector<std::vector<int>>& adj) const {
    const int n = static_cast<int>(adj.size());
    const auto at = [](int i) { return static_cast<std::size_t>(i); };
    const int kInf = n + 1;
    std::vector<int> row_of_col(at(n), -1);
    std::vector<int> col_of_row(at(n), -1);
    for (int r = 0; r < n; ++r) {
      for (const int c : adj[at(r)]) {
        if (row_of_col[at(c)] < 0) {
          row_of_col[at(c)] = r;
          col_of_row[at(r)] = c;
          break;
        }
      }
    }
    std::vector<int> dist(at(n));
    std::vector<int> ptr(at(n));       // per-phase DFS edge cursor
    std::vector<int> queue;            // BFS worklist (index-scanned)
    std::vector<int> stack;            // DFS row path
    std::vector<int> taken;            // column chosen at each DFS depth
    queue.reserve(at(n));
    for (;;) {
      // BFS: layer matched rows by alternating-path depth from free rows.
      queue.clear();
      for (int r = 0; r < n; ++r) {
        dist[at(r)] = col_of_row[at(r)] < 0 ? 0 : kInf;
        if (dist[at(r)] == 0) queue.push_back(r);
      }
      bool free_col_reachable = false;
      for (std::size_t qi = 0; qi < queue.size(); ++qi) {
        const int r = queue[qi];
        for (const int c : adj[at(r)]) {
          const int owner = row_of_col[at(c)];
          if (owner < 0) {
            free_col_reachable = true;
          } else if (dist[at(owner)] == kInf) {
            dist[at(owner)] = dist[at(r)] + 1;
            queue.push_back(owner);
          }
        }
      }
      if (!free_col_reachable) break;
      // DFS along the layering, one shortest augmenting path per free row.
      std::fill(ptr.begin(), ptr.end(), 0);
      for (int start = 0; start < n; ++start) {
        if (col_of_row[at(start)] >= 0) continue;
        stack.assign(1, start);
        taken.assign(1, -1);
        while (!stack.empty()) {
          const int r = stack.back();
          bool moved = false;
          while (ptr[at(r)] < static_cast<int>(adj[at(r)].size())) {
            const int c = adj[at(r)][at(ptr[at(r)]++)];
            const int owner = row_of_col[at(c)];
            if (owner < 0) {
              // Free column: flip the whole path row<->column pairing.
              taken.back() = c;
              for (std::size_t d = stack.size(); d-- > 0;) {
                row_of_col[at(taken[d])] = stack[d];
                col_of_row[at(stack[d])] = taken[d];
              }
              stack.clear();
              moved = true;
              break;
            }
            if (dist[at(owner)] == dist[at(r)] + 1) {
              taken.back() = c;
              stack.push_back(owner);
              taken.push_back(-1);
              moved = true;
              break;
            }
          }
          if (!moved) {
            dist[at(r)] = kInf;  // dead end this phase
            stack.pop_back();
            taken.pop_back();
          }
        }
      }
    }
    std::vector<int> unmatched;
    for (int r = 0; r < n; ++r) {
      if (col_of_row[at(r)] < 0) unmatched.push_back(r);
    }
    return unmatched;
  }

  void report_unmatched(const std::vector<int>& rows, const char* regime) {
    std::vector<std::string> names;
    std::string entity = "circuit";
    int line = 0;
    for (const int r : rows) {
      if (r < circuit_.node_count()) {
        names.push_back("node '" + circuit_.node_name(r) + "'");
        if (entity == "circuit") {
          entity = node_entity(r);
          line = circuit_.node_line(r);
        }
      } else {
        const int owner = branch_owner_[static_cast<std::size_t>(r)];
        const Device* d =
            owner >= 0 ? circuit_.devices()[static_cast<std::size_t>(owner)].get() : nullptr;
        names.push_back(d != nullptr ? "branch of device '" + d->name() + "'"
                                     : str_format("branch unknown %d", r));
        if (entity == "circuit" && d != nullptr) {
          entity = "device '" + d->name() + "'";
          line = d->netlist_line();
        }
      }
    }
    diag(LintSeverity::warning, "struct-singular", std::move(entity), line,
         str_format("%zu equation row(s) are structurally singular %s: ", rows.size(),
                    regime) +
             name_list(names));
  }

  Circuit& circuit_;
  const LintOptions& opts_;
  LintReport& rep_;
  LintSink sink_;
  std::vector<char> floating_;
  std::vector<int> branch_owner_;
};

LintReport lint_circuit(Circuit& circuit, const LintOptions& opts) {
  LintReport rep;
  LintDriver(circuit, opts, rep).run();
  return rep;
}

}  // namespace usys::spice
