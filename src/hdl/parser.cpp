#include "hdl/parser.hpp"

#include "common/strings.hpp"

namespace usys::hdl {

const Entity* DesignUnit::find_entity(const std::string& name) const {
  for (const auto& e : entities) {
    if (iequals(e.name, name)) return &e;
  }
  return nullptr;
}

const Architecture* DesignUnit::find_architecture_of(const std::string& entity) const {
  for (const auto& a : architectures) {
    if (iequals(a.entity, entity)) return &a;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  DesignUnit run() {
    DesignUnit unit;
    while (!at(Tok::end_of_file)) {
      if (kw("ENTITY")) {
        unit.entities.push_back(entity());
      } else if (kw("ARCHITECTURE")) {
        unit.architectures.push_back(architecture());
      } else {
        throw ParseError(peek().line, "expected ENTITY or ARCHITECTURE, got '" +
                                          peek().text + "'");
      }
    }
    return unit;
  }

 private:
  const Token& peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool at(Tok k) const { return peek().kind == k; }
  bool kw(const char* k) const { return is_keyword(peek(), k); }

  Token take() { return toks_[pos_++]; }

  Token expect(Tok k, const char* what) {
    if (!at(k)) throw ParseError(peek().line, std::string("expected ") + what +
                                                  ", got '" + peek().text + "'");
    return take();
  }

  Token expect_kw(const char* k) {
    if (!kw(k))
      throw ParseError(peek().line,
                       std::string("expected '") + k + "', got '" + peek().text + "'");
    return take();
  }

  std::string ident() { return expect(Tok::identifier, "identifier").text; }

  // -- declarations ---------------------------------------------------------

  Entity entity() {
    expect_kw("ENTITY");
    Entity e;
    e.name = ident();
    expect_kw("IS");
    while (!kw("END")) {
      if (kw("GENERIC")) {
        take();
        expect(Tok::lparen, "'('");
        for (;;) {
          std::vector<std::string> names{ident()};
          while (at(Tok::comma)) {
            take();
            names.push_back(ident());
          }
          expect(Tok::colon, "':'");
          expect_kw("ANALOG");
          GenericDecl proto;
          if (at(Tok::assign)) {
            take();
            proto.has_default = true;
            proto.default_value = signed_number();
          }
          for (auto& n : names) {
            GenericDecl g = proto;
            g.name = std::move(n);
            e.generics.push_back(std::move(g));
          }
          if (at(Tok::semicolon)) {
            take();
            continue;
          }
          break;
        }
        expect(Tok::rparen, "')'");
        expect(Tok::semicolon, "';'");
      } else if (kw("PIN")) {
        take();
        expect(Tok::lparen, "'('");
        for (;;) {
          std::vector<std::string> names{ident()};
          while (at(Tok::comma)) {
            take();
            names.push_back(ident());
          }
          expect(Tok::colon, "':'");
          const Token nat_tok = expect(Tok::identifier, "nature name");
          Nature nat{};
          if (!parse_nature(to_lower(nat_tok.text), nat))
            throw ParseError(nat_tok.line, "unknown nature '" + nat_tok.text + "'");
          for (auto& n : names) e.pins.push_back({std::move(n), nat});
          if (at(Tok::semicolon)) {
            take();
            continue;
          }
          break;
        }
        expect(Tok::rparen, "')'");
        expect(Tok::semicolon, "';'");
      } else {
        throw ParseError(peek().line, "expected GENERIC, PIN or END in entity");
      }
    }
    expect_kw("END");
    expect_kw("ENTITY");
    const std::string closing = ident();
    if (!iequals(closing, e.name))
      throw ParseError(peek().line, "entity name mismatch: '" + closing + "'");
    expect(Tok::semicolon, "';'");
    return e;
  }

  Architecture architecture() {
    expect_kw("ARCHITECTURE");
    Architecture a;
    a.name = ident();
    expect_kw("OF");
    a.entity = ident();
    expect_kw("IS");
    while (kw("VARIABLE") || kw("STATE")) {
      const bool is_state = kw("STATE");
      take();
      std::vector<std::string> names{ident()};
      while (at(Tok::comma)) {
        take();
        names.push_back(ident());
      }
      expect(Tok::colon, "':'");
      expect_kw("ANALOG");
      expect(Tok::semicolon, "';'");
      for (auto& n : names) a.variables.push_back({std::move(n), is_state});
    }
    expect_kw("BEGIN");
    expect_kw("RELATION");
    while (kw("PROCEDURAL")) {
      take();
      expect_kw("FOR");
      ProceduralBlock block;
      block.domains.push_back(to_lower(ident()));
      while (at(Tok::comma)) {
        take();
        block.domains.push_back(to_lower(ident()));
      }
      expect(Tok::arrow, "'=>'");
      while (!kw("PROCEDURAL") && !kw("END")) block.stmts.push_back(statement());
      a.blocks.push_back(std::move(block));
    }
    expect_kw("END");
    expect_kw("RELATION");
    expect(Tok::semicolon, "';'");
    expect_kw("END");
    expect_kw("ARCHITECTURE");
    const std::string closing = ident();
    if (!iequals(closing, a.name))
      throw ParseError(peek().line, "architecture name mismatch: '" + closing + "'");
    expect(Tok::semicolon, "';'");
    return a;
  }

  // -- statements -------------------------------------------------------------

  Stmt statement() {
    Stmt s;
    s.line = peek().line;
    if (kw("ASSERT")) {
      // ASSERT expr ;  — run-time boundary-condition verification (the paper:
      // "the validity of boundary conditions may be verified in these models
      // during run-time"). The expression must stay positive.
      take();
      s.kind = StmtKind::assertion;
      s.expr = expression();
      expect(Tok::semicolon, "';'");
      return s;
    }
    if (at(Tok::lbracket)) {
      // [p, q].field %= expr ;
      take();
      s.kind = StmtKind::contribution;
      s.pin1 = ident();
      expect(Tok::comma, "','");
      s.pin2 = ident();
      expect(Tok::rbracket, "']'");
      expect(Tok::dot, "'.'");
      s.field = to_lower(ident());
      expect(Tok::contribute, "'%='");
      s.expr = expression();
      expect(Tok::semicolon, "';'");
      if (s.field != "i" && s.field != "f" && s.field != "v" && s.field != "tv")
        throw ParseError(s.line, "contribution field must be .i, .f, .v or .tv");
      return s;
    }
    s.kind = StmtKind::assign;
    s.target = ident();
    expect(Tok::assign, "':='");
    s.expr = expression();
    expect(Tok::semicolon, "';'");
    return s;
  }

  double signed_number() {
    double sign = 1.0;
    while (at(Tok::minus) || at(Tok::plus)) {
      if (take().kind == Tok::minus) sign = -sign;
    }
    return sign * expect(Tok::number, "number").value;
  }

  // -- expressions -------------------------------------------------------------

  ExprPtr expression() {
    ExprPtr lhs = term();
    while (at(Tok::plus) || at(Tok::minus)) {
      const Token op = take();
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprKind::binary;
      node->name = op.text;
      node->line = op.line;
      node->args.push_back(std::move(lhs));
      node->args.push_back(term());
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr term() {
    ExprPtr lhs = factor();
    while (at(Tok::star) || at(Tok::slash)) {
      const Token op = take();
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprKind::binary;
      node->name = op.text;
      node->line = op.line;
      node->args.push_back(std::move(lhs));
      node->args.push_back(factor());
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr factor() {
    if (at(Tok::minus)) {
      const Token op = take();
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprKind::unary_neg;
      node->line = op.line;
      node->args.push_back(factor());
      return node;
    }
    if (at(Tok::plus)) {
      take();
      return factor();
    }
    ExprPtr base = primary();
    if (at(Tok::caret)) {
      const Token op = take();
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprKind::call;
      node->name = "pow";
      node->line = op.line;
      node->args.push_back(std::move(base));
      node->args.push_back(factor());  // right-associative
      return node;
    }
    return base;
  }

  ExprPtr primary() {
    const Token& t = peek();
    if (at(Tok::number)) {
      take();
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprKind::number;
      node->number = t.value;
      node->line = t.line;
      return node;
    }
    if (at(Tok::lparen)) {
      take();
      ExprPtr inner = expression();
      expect(Tok::rparen, "')'");
      return inner;
    }
    if (at(Tok::lbracket)) {
      take();
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprKind::port_read;
      node->line = t.line;
      node->pin1 = ident();
      expect(Tok::comma, "','");
      node->pin2 = ident();
      expect(Tok::rbracket, "']'");
      expect(Tok::dot, "'.'");
      node->name = to_lower(ident());
      return node;
    }
    if (at(Tok::identifier)) {
      const Token id = take();
      if (at(Tok::lparen)) {
        take();
        auto node = std::make_unique<ExprNode>();
        node->kind = ExprKind::call;
        node->name = to_lower(id.text);
        node->line = id.line;
        node->args.push_back(expression());
        while (at(Tok::comma)) {
          take();
          node->args.push_back(expression());
        }
        expect(Tok::rparen, "')'");
        return node;
      }
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprKind::name;
      node->name = id.text;
      node->line = id.line;
      return node;
    }
    throw ParseError(t.line, "expected expression, got '" + t.text + "'");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

DesignUnit parse(const std::string& source) { return Parser(lex(source)).run(); }

}  // namespace usys::hdl
