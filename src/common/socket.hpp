// Unix-domain stream sockets for the simulation server (src/server).
//
// Two small RAII wrappers over AF_UNIX/SOCK_STREAM:
//
//   * UnixConn     — one connection: buffered line reads (the wire protocol
//                    is newline-delimited JSON), full writes that never raise
//                    SIGPIPE, and a non-blocking peer-hangup probe used to
//                    cancel jobs when the client goes away mid-stream.
//   * UnixListener — bind/listen/accept with a poll timeout so the accept
//                    loop can wake up to observe shutdown; unlinks the
//                    socket path it bound on close.
//
// Everything reports failure by return value (invalid socket / false) rather
// than exceptions: callers are server loops where a bad peer must never take
// down the process.
#pragma once

#include <cstddef>
#include <string>

namespace usys {

/// A connected Unix-domain stream socket. Move-only; closes on destruction.
class UnixConn {
 public:
  UnixConn() = default;
  /// Adopts an already-connected file descriptor (from accept/connect).
  explicit UnixConn(int fd) : fd_(fd) {}
  ~UnixConn() { close(); }

  UnixConn(UnixConn&& other) noexcept;
  UnixConn& operator=(UnixConn&& other) noexcept;
  UnixConn(const UnixConn&) = delete;
  UnixConn& operator=(const UnixConn&) = delete;

  /// Connects to a listening socket at `path`. Returns an invalid conn on
  /// failure (missing socket, refused, permission).
  static UnixConn connect_to(const std::string& path);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  /// Reads one '\n'-terminated line (newline stripped) into `line`.
  /// Blocks up to `timeout_ms` (-1 = forever) for each underlying read.
  /// Returns false on EOF before a complete line, timeout, or error.
  bool read_line(std::string& line, int timeout_ms = -1);

  /// Writes the whole buffer; short writes are retried. SIGPIPE-safe: a
  /// closed peer yields `false`, never a signal.
  bool write_all(const char* data, std::size_t len);
  bool write_all(const std::string& data) { return write_all(data.data(), data.size()); }

  /// Non-blocking probe: true once the peer has closed its end (orderly EOF
  /// or reset). Buffered-but-unread request bytes do not count as hangup.
  bool peer_hung_up() const;

  void close();

 private:
  int fd_ = -1;
  std::string rbuf_;  // bytes received past the last returned line
};

/// A bound, listening Unix-domain socket. Move-only; closing unlinks the
/// filesystem path it created.
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener() { close(); }

  UnixListener(UnixListener&& other) noexcept;
  UnixListener& operator=(UnixListener&& other) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Binds and listens on `path`. A stale socket file from a previous run is
  /// removed first (daemon restart is the common case). On failure returns
  /// false and, when `error` is non-null, stores a description.
  bool listen_on(const std::string& path, std::string* error = nullptr);

  bool valid() const noexcept { return fd_ >= 0; }

  /// Waits up to `timeout_ms` for a connection. Returns an invalid conn on
  /// timeout or error so the caller's loop can re-check its stop flag.
  UnixConn accept_conn(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace usys
