// PWL macromodels: interpolation, the table-driven transducer device, the
// polynomial fit, and generated-HDL round trips.
#include <gtest/gtest.h>

#include <cmath>

#include "api/api.hpp"
#include "core/reference.hpp"
#include "hdl/interpreter.hpp"
#include "pxt/pwl.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys::pxt {
namespace {

TEST(Pwl, InterpolationAndClamping) {
  const Pwl1 f({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
  EXPECT_DOUBLE_EQ(f(0.5), 5.0);
  EXPECT_DOUBLE_EQ(f(1.5), 5.0);
  EXPECT_DOUBLE_EQ(f(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(f(5.0), 0.0);
  EXPECT_DOUBLE_EQ(f.slope(0.5), 10.0);
  EXPECT_DOUBLE_EQ(f.slope(1.5), -10.0);
  EXPECT_DOUBLE_EQ(f.slope(5.0), 0.0);
}

TEST(Pwl, RejectsBadInput) {
  EXPECT_THROW(Pwl1({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(Pwl1({1.0, 0.5}, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Pwl1({0.0, 1.0}, {0.0}), std::invalid_argument);
}

TEST(Pwl, PolyfitRecoversPolynomial) {
  std::vector<double> x, y;
  for (int i = 0; i <= 10; ++i) {
    const double t = static_cast<double>(i) / 10.0;
    x.push_back(t);
    y.push_back(2.0 - 3.0 * t + 0.5 * t * t);
  }
  const auto c = polyfit(x, y, 2);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c[0], 2.0, 1e-9);
  EXPECT_NEAR(c[1], -3.0, 1e-9);
  EXPECT_NEAR(c[2], 0.5, 1e-9);
  EXPECT_NEAR(polyval(c, 0.3), 2.0 - 0.9 + 0.045, 1e-9);
}

TEST(Pwl, PolyfitValidation) {
  EXPECT_THROW(polyfit({1.0}, {1.0, 2.0}, 1), std::invalid_argument);
  EXPECT_THROW(polyfit({1.0, 2.0}, {1.0, 2.0}, 5), std::invalid_argument);
}

ExtractionTable analytic_table() {
  // Build a capacitance table directly from the analytic formula (keeps the
  // test fast and independent of the FE solver, which has its own tests).
  ExtractionSetup setup;
  setup.width = 0.1;
  setup.depth = 1e-3;
  setup.gap0 = 0.15e-3;
  ExtractionTable t;
  t.setup = setup;
  t.voltages = {10.0};
  for (int i = -6; i <= 6; ++i) {
    const double x = static_cast<double>(i) * 5e-6;
    t.displacements.push_back(x);
    ExtractionSample s;
    s.displacement = x;
    s.voltage = 10.0;
    s.capacitance = analytic_capacitance(setup, x);
    s.force_mst = analytic_force(setup, x, 10.0);
    t.samples.push_back(s);
  }
  return t;
}

TEST(Pwl, CapacitanceModelTracksAnalytic) {
  const auto table = analytic_table();
  const Pwl1 cap = capacitance_model(table);
  for (double x : {-2.4e-5, 0.0, 1.7e-5}) {
    EXPECT_NEAR(cap(x), analytic_capacitance(table.setup, x),
                analytic_capacitance(table.setup, x) * 2e-3)
        << x;
  }
}

TEST(Pwl, TransducerDeviceReproducesStaticDeflection) {
  // The PWL device in the Fig. 3 system must land within the table's
  // resolution of the analytic static deflection.
  const auto table = analytic_table();
  spice::Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  const int disp = ckt.add_node("disp", Nature::mechanical_translation);
  ckt.add<spice::VSource>(
      "V1", drive, spice::Circuit::kGround,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {5e-3, 10.0}, {1.0, 10.0}}));
  ckt.add<PwlTransducer>("XT", drive, spice::Circuit::kGround, vel,
                         spice::Circuit::kGround, capacitance_model(table));
  ckt.add<spice::Mass>("M1", vel, 1e-4);
  ckt.add<spice::Spring>("K1", vel, spice::Circuit::kGround, 200.0);
  ckt.add<spice::Damper>("D1", vel, spice::Circuit::kGround, 40e-3);
  ckt.add<spice::StateIntegrator>("XD", disp, vel);

  spice::TranOptions opts;
  opts.tstop = 80e-3;
  const auto res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  core::ResonatorParams p;
  const double x_expected = core::static_displacement_transverse(p, 10.0);
  EXPECT_NEAR(res.sample(80e-3, disp), x_expected, std::abs(x_expected) * 0.05);
}

TEST(Pwl, GeneratedHdlSimulates) {
  // generate_hdl_model -> parse -> elaborate -> simulate the Fig. 3 system;
  // deflection must match the analytic static value.
  const auto table = analytic_table();
  const std::string src = generate_hdl_model(table, 3);
  EXPECT_NE(src.find("ENTITY pxt_etrans"), std::string::npos);

  spice::Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  const int disp = ckt.add_node("disp", Nature::mechanical_translation);
  ckt.add<spice::VSource>(
      "V1", drive, spice::Circuit::kGround,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {5e-3, 10.0}, {1.0, 10.0}}));
  ckt.add_device(hdl::instantiate(
      "XT", src, "pxt_etrans", {},
      {drive, spice::Circuit::kGround, vel, spice::Circuit::kGround}));
  ckt.add<spice::Mass>("M1", vel, 1e-4);
  ckt.add<spice::Spring>("K1", vel, spice::Circuit::kGround, 200.0);
  ckt.add<spice::Damper>("D1", vel, spice::Circuit::kGround, 40e-3);
  ckt.add<spice::StateIntegrator>("XD", disp, vel);

  spice::TranOptions opts;
  opts.tstop = 80e-3;
  const auto res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  core::ResonatorParams p;
  const double x_expected = core::static_displacement_transverse(p, 10.0);
  EXPECT_NEAR(res.sample(80e-3, disp), x_expected, std::abs(x_expected) * 0.03);
}

}  // namespace
}  // namespace usys::pxt
