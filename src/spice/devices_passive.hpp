// Passive two-terminal elements, electrical and mechanical.
//
// Under the paper's FI analogy the mechanical elements are the electrical
// ones re-typed:  mass <-> capacitor (C = m), spring <-> inductor (L = 1/k),
// damper <-> resistor (conductance = alpha). We provide the mechanical
// elements as first-class devices so netlists read like the physics, while
// sharing the stamp math with their electrical twins.
#pragma once

#include <cmath>

#include "spice/circuit.hpp"

namespace usys::spice {

/// Linear resistor, i = (va - vb)/R. Nature-generic (verified at bind).
class Resistor : public Device {
 public:
  Resistor(std::string name, int a, int b, double resistance,
           Nature nature = Nature::electrical);
  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void lint(LintSink& sink) const override;
  double resistance() const noexcept { return r_; }
  bool set_param(std::string_view key, double value) override {
    if (key != "r" || value == 0.0 || !std::isfinite(value)) return false;
    r_ = value;
    return true;
  }
  bool get_param(std::string_view key, double& out) const override {
    if (key != "r") return false;
    out = r_;
    return true;
  }

 protected:
  /// Parameter checks of lint(); Damper re-labels them in damping terms.
  virtual void lint_values(LintSink& sink) const;
  /// For derived mechanical twins (Damper) that keep r_ = f(their param).
  void set_resistance(double r) noexcept { r_ = r; }

 private:
  int a_, b_;
  double r_;
  Nature nature_;
};

/// Linear capacitor, q = C (va - vb).
class Capacitor : public Device {
 public:
  Capacitor(std::string name, int a, int b, double capacitance,
            Nature nature = Nature::electrical);
  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void lint(LintSink& sink) const override;
  double capacitance() const noexcept { return c_; }
  bool set_param(std::string_view key, double value) override {
    if (key != "c" || !std::isfinite(value)) return false;
    c_ = value;
    return true;
  }
  bool get_param(std::string_view key, double& out) const override {
    if (key != "c") return false;
    out = c_;
    return true;
  }

 protected:
  virtual void lint_values(LintSink& sink) const;
  void set_capacitance(double c) noexcept { c_ = c; }

 private:
  int a_, b_;
  double c_;
  Nature nature_;
};

/// Linear inductor with a branch current unknown; flux = L i.
class Inductor : public Device {
 public:
  Inductor(std::string name, int a, int b, double inductance,
           Nature nature = Nature::electrical);
  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void lint(LintSink& sink) const override;
  double inductance() const noexcept { return l_; }
  /// Unknown index of the branch current (valid after bind).
  int branch() const noexcept { return br_; }
  bool set_param(std::string_view key, double value) override {
    if (key != "l" || !std::isfinite(value)) return false;
    l_ = value;
    return true;
  }
  bool get_param(std::string_view key, double& out) const override {
    if (key != "l") return false;
    out = l_;
    return true;
  }

 protected:
  virtual void lint_values(LintSink& sink) const;
  void set_inductance(double l) noexcept { l_ = l; }

 private:
  int a_, b_;
  double l_;
  Nature nature_;
  int br_ = -1;
};

/// Point mass attached between a mechanical node and the fixed frame:
/// F = m dv/dt. (The paper's Fig. 4 shows it as C = m.)
class Mass : public Capacitor {
 public:
  Mass(std::string name, int node, double mass_kg)
      : Capacitor(std::move(name), node, Circuit::kGround, mass_kg,
                  Nature::mechanical_translation) {}
  double mass() const noexcept { return capacitance(); }
  // Shadows Capacitor's "c": a Mass is addressed by its netlist key "m".
  bool set_param(std::string_view key, double value) override {
    if (key != "m" || !std::isfinite(value)) return false;
    set_capacitance(value);
    return true;
  }
  bool get_param(std::string_view key, double& out) const override {
    if (key != "m") return false;
    out = capacitance();
    return true;
  }

 protected:
  void lint_values(LintSink& sink) const override;
};

/// Linear spring between two mechanical nodes: F = k * integral(v) dt,
/// i.e. an inductor with L = 1/k. Its branch flow *is* the spring force, so
/// the DC solution exposes the static force balance directly.
class Spring : public Inductor {
 public:
  Spring(std::string name, int a, int b, double stiffness)
      : Inductor(std::move(name), a, b, 1.0 / stiffness, Nature::mechanical_translation),
        k_(stiffness) {}
  double stiffness() const noexcept { return k_; }
  /// Spring displacement = force / k; force is the branch unknown.
  double displacement(const DVector& x) const {
    return x.at(static_cast<std::size_t>(branch())) / k_;
  }
  // Shadows Inductor's "l": keeps k_ and the stamped L = 1/k in lockstep.
  bool set_param(std::string_view key, double value) override {
    if (key != "k" || value == 0.0 || !std::isfinite(value)) return false;
    k_ = value;
    set_inductance(1.0 / value);
    return true;
  }
  bool get_param(std::string_view key, double& out) const override {
    if (key != "k") return false;
    out = k_;
    return true;
  }

 protected:
  void lint_values(LintSink& sink) const override;

 private:
  double k_;
};

/// Viscous damper: F = alpha * (va - vb), i.e. a resistor with R = 1/alpha.
class Damper : public Resistor {
 public:
  Damper(std::string name, int a, int b, double alpha)
      : Resistor(std::move(name), a, b, 1.0 / alpha, Nature::mechanical_translation),
        alpha_(alpha) {}
  double alpha() const noexcept { return alpha_; }
  // Shadows Resistor's "r": keeps alpha_ and the stamped R = 1/alpha in sync.
  bool set_param(std::string_view key, double value) override {
    if (key != "alpha" || value == 0.0 || !std::isfinite(value)) return false;
    alpha_ = value;
    set_resistance(1.0 / value);
    return true;
  }
  bool get_param(std::string_view key, double& out) const override {
    if (key != "alpha") return false;
    out = alpha_;
    return true;
  }

 protected:
  void lint_values(LintSink& sink) const override;

 private:
  double alpha_;
};

}  // namespace usys::spice
