#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace usys {

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::boolean;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::number;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::string;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array() {
  JsonValue v;
  v.kind_ = Kind::array;
  return v;
}

JsonValue JsonValue::make_object() {
  JsonValue v;
  v.kind_ = Kind::object;
  return v;
}

bool JsonValue::as_bool(bool fallback) const noexcept {
  return kind_ == Kind::boolean ? bool_ : fallback;
}

double JsonValue::as_number(double fallback) const noexcept {
  return kind_ == Kind::number ? num_ : fallback;
}

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
  if (kind_ != Kind::object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::get_string(const std::string& key, const std::string& fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->str_ : fallback;
}

double JsonValue::get_number(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->num_ : fallback;
}

bool JsonValue::get_bool(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_ : fallback;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::array) items_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  if (kind_ != Kind::object) return;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void json_append_escaped(std::string& out, const std::string& v) {
  out += '"';
  for (const char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void json_append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

namespace {

void dump_value(const JsonValue& v, std::string& out) {
  switch (v.kind()) {
    case JsonValue::Kind::null:
      out += "null";
      break;
    case JsonValue::Kind::boolean:
      out += v.as_bool() ? "true" : "false";
      break;
    case JsonValue::Kind::number:
      json_append_double(out, v.as_number());
      break;
    case JsonValue::Kind::string:
      json_append_escaped(out, v.as_string());
      break;
    case JsonValue::Kind::array: {
      out += '[';
      bool first = true;
      for (const auto& item : v.items()) {
        if (!first) out += ',';
        first = false;
        dump_value(item, out);
      }
      out += ']';
      break;
    }
    case JsonValue::Kind::object: {
      out += '{';
      bool first = true;
      for (const auto& [k, member] : v.members()) {
        if (!first) out += ',';
        first = false;
        json_append_escaped(out, k);
        out += ':';
        dump_value(member, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string JsonValue::dump() const {
  std::string out;
  out.reserve(64);
  dump_value(*this, out);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

/// Recursive-descent parser over a borrowed buffer. Depth-limited: the wire
/// schema nests 3-4 levels, so 64 is generous while keeping a hostile
/// "[[[[..." request from exhausting the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text.c_str()), end_(s_ + text.size()) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out, 0)) return false;
    skip_ws();
    return s_ == end_;  // trailing garbage is a syntax error
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (s_ < end_ && (*s_ == ' ' || *s_ == '\t' || *s_ == '\n' || *s_ == '\r')) ++s_;
  }

  bool literal(const char* word, std::size_t len) {
    if (static_cast<std::size_t>(end_ - s_) < len || std::strncmp(s_, word, len) != 0)
      return false;
    s_ += len;
    return true;
  }

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxDepth || s_ >= end_) return false;
    switch (*s_) {
      case 'n': return literal("null", 4) ? (out = JsonValue::make_null(), true) : false;
      case 't': return literal("true", 4) ? (out = JsonValue::make_bool(true), true) : false;
      case 'f': return literal("false", 5) ? (out = JsonValue::make_bool(false), true) : false;
      case '"': return string_value(out);
      case '[': return array_value(out, depth);
      case '{': return object_value(out, depth);
      default: return number_value(out);
    }
  }

  bool string_value(JsonValue& out) {
    std::string s;
    if (!string_raw(s)) return false;
    out = JsonValue::make_string(std::move(s));
    return true;
  }

  bool string_raw(std::string& s) {
    if (s_ >= end_ || *s_ != '"') return false;
    ++s_;
    while (s_ < end_) {
      const char c = *s_++;
      if (c == '"') return true;
      if (c == '\\') {
        if (s_ >= end_) return false;
        const char e = *s_++;
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            if (end_ - s_ < 4) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = *s_++;
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // UTF-8 encode the BMP code point (surrogate pairs unsupported —
            // the wire schema is ASCII + escaped control characters).
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control characters must be escaped
      } else {
        s += c;
      }
    }
    return false;  // unterminated string
  }

  bool number_value(JsonValue& out) {
    char* num_end = nullptr;
    const double v = std::strtod(s_, &num_end);
    if (num_end == s_) return false;
    // strtod accepts "inf"/"nan" which JSON forbids; the switch in value()
    // already routes 'n'/'t'/'f' away, but reject any non-finite result and
    // hex forms defensively.
    if (!std::isfinite(v)) return false;
    s_ = num_end;
    out = JsonValue::make_number(v);
    return true;
  }

  bool array_value(JsonValue& out, int depth) {
    ++s_;  // '['
    out = JsonValue::make_array();
    skip_ws();
    if (s_ < end_ && *s_ == ']') {
      ++s_;
      return true;
    }
    while (true) {
      JsonValue item;
      skip_ws();
      if (!value(item, depth + 1)) return false;
      out.push_back(std::move(item));
      skip_ws();
      if (s_ >= end_) return false;
      if (*s_ == ',') {
        ++s_;
        continue;
      }
      if (*s_ == ']') {
        ++s_;
        return true;
      }
      return false;
    }
  }

  bool object_value(JsonValue& out, int depth) {
    ++s_;  // '{'
    out = JsonValue::make_object();
    skip_ws();
    if (s_ < end_ && *s_ == '}') {
      ++s_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string_raw(key)) return false;
      skip_ws();
      if (s_ >= end_ || *s_ != ':') return false;
      ++s_;
      skip_ws();
      JsonValue member;
      if (!value(member, depth + 1)) return false;
      out.set(std::move(key), std::move(member));
      skip_ws();
      if (s_ >= end_) return false;
      if (*s_ == ',') {
        ++s_;
        continue;
      }
      if (*s_ == '}') {
        ++s_;
        return true;
      }
      return false;
    }
  }

  const char* s_;
  const char* end_;
};

}  // namespace

std::optional<JsonValue> json_parse(const std::string& text) {
  Parser p(text);
  JsonValue v;
  if (!p.parse(v)) return std::nullopt;
  return v;
}

}  // namespace usys
