#include "spice/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/constants.hpp"

namespace usys::spice {

PulseWave::PulseWave(double v1, double v2, double delay, double rise, double fall,
                     double width, double period)
    : v1_(v1), v2_(v2), td_(delay), tr_(rise), tf_(fall), pw_(width), per_(period) {
  if (tr_ < 0 || tf_ < 0 || pw_ < 0) throw std::invalid_argument("PulseWave: negative timing");
  // Zero rise/fall would make value(t) discontinuous and the Jacobian of a
  // driven system rank-deficient at the corner; clamp to 1 ps like SPICE.
  tr_ = std::max(tr_, 1e-12);
  tf_ = std::max(tf_, 1e-12);
}

double PulseWave::value(double t) const {
  double tl = t - td_;
  if (tl < 0) return v1_;
  if (per_ > 0) tl = std::fmod(tl, per_);
  if (tl < tr_) return v1_ + (v2_ - v1_) * tl / tr_;
  if (tl < tr_ + pw_) return v2_;
  if (tl < tr_ + pw_ + tf_) return v2_ + (v1_ - v2_) * (tl - tr_ - pw_) / tf_;
  return v1_;
}

void PulseWave::breakpoints(std::vector<double>& out) const {
  const int cycles = per_ > 0 ? 4 : 1;  // enough cycles for our analyses
  for (int c = 0; c < cycles; ++c) {
    const double base = td_ + c * per_;
    out.push_back(base);
    out.push_back(base + tr_);
    out.push_back(base + tr_ + pw_);
    out.push_back(base + tr_ + pw_ + tf_);
  }
}

SinWave::SinWave(double offset, double amplitude, double freq, double delay, double damping)
    : vo_(offset), va_(amplitude), freq_(freq), td_(delay), theta_(damping) {}

double SinWave::value(double t) const {
  if (t < td_) return vo_;
  const double tl = t - td_;
  return vo_ + va_ * std::sin(2.0 * kPi * freq_ * tl) * std::exp(-tl * theta_);
}

PwlWave::PwlWave(std::vector<std::pair<double, double>> points) : pts_(std::move(points)) {
  if (pts_.empty()) throw std::invalid_argument("PwlWave: empty point list");
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    if (pts_[i].first < pts_[i - 1].first)
      throw std::invalid_argument("PwlWave: time points must be non-decreasing");
  }
}

double PwlWave::value(double t) const {
  if (t <= pts_.front().first) return pts_.front().second;
  if (t >= pts_.back().first) return pts_.back().second;
  // Linear search is fine: waveforms have a handful of corners.
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    if (t <= pts_[i].first) {
      const auto& [t0, v0] = pts_[i - 1];
      const auto& [t1, v1] = pts_[i];
      if (t1 == t0) return v1;
      return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
    }
  }
  return pts_.back().second;
}

void PwlWave::breakpoints(std::vector<double>& out) const {
  for (const auto& [t, v] : pts_) {
    (void)v;
    out.push_back(t);
  }
}

std::unique_ptr<Waveform> make_fig5_pulse_train(const std::vector<double>& levels,
                                                double total, double rise, double fall) {
  if (levels.empty()) throw std::invalid_argument("pulse train: no levels");
  // Lay the pulses out evenly: each level gets an equal slot with a small
  // leading gap so the system starts (and re-settles) at rest, matching the
  // three separate excitations visible in the paper's Fig. 5 upper plot.
  std::vector<std::pair<double, double>> pts;
  const double slot = total / static_cast<double>(levels.size());
  const double gap = 0.1 * slot;
  pts.emplace_back(0.0, 0.0);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const double t0 = slot * static_cast<double>(i) + gap;
    const double t1 = slot * static_cast<double>(i + 1) - gap;
    pts.emplace_back(t0, 0.0);
    pts.emplace_back(t0 + rise, levels[i]);
    pts.emplace_back(t1 - fall, levels[i]);
    pts.emplace_back(t1, 0.0);
  }
  pts.emplace_back(total, 0.0);
  return std::make_unique<PwlWave>(std::move(pts));
}

}  // namespace usys::spice
