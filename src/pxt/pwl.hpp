// Piecewise-linear behavioral macromodels generated from PXT sweeps, plus
// the circuit device and HDL-AT model generation that consume them.
//
// The paper: "By iterating the variation of boundary conditions and
// extracting the parameter of interest, a piecewise linear behavioral macro
// model is created. A HDL-A model is then generated..." Our HDL-AT has no
// table literals, so the generated HDL uses a least-squares polynomial fit
// of C(x); the native PwlTransducer device interpolates the raw table
// exactly. Both paths are validated against the analytic model in the
// benches.
#pragma once

#include <string>
#include <vector>

#include "pxt/extractor.hpp"
#include "spice/circuit.hpp"

namespace usys::pxt {

/// 1D piecewise-linear function y(x) with clamped extrapolation.
class Pwl1 {
 public:
  Pwl1() = default;
  Pwl1(std::vector<double> x, std::vector<double> y);

  double operator()(double x) const;
  /// Slope dy/dx of the active segment (constant per segment).
  double slope(double x) const;

  const std::vector<double>& xs() const noexcept { return x_; }
  const std::vector<double>& ys() const noexcept { return y_; }

 private:
  std::vector<double> x_, y_;
};

/// Capacitance macromodel C(x) distilled from an extraction table.
Pwl1 capacitance_model(const ExtractionTable& table);

/// Energy-consistent PWL electrostatic transducer:
///   i = d(C(x) V)/dt,  F_plate = +1/2 V^2 dC/dx  (from the table slope).
/// Pins like TransverseElectrostatic: (a,b) electrical, (c,d) mechanical.
class PwlTransducer final : public spice::Device {
 public:
  PwlTransducer(std::string name, int a, int b, int c, int d, Pwl1 cap_of_x);

  void bind(spice::Binder& binder) override;
  void evaluate(spice::EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void start_transient(const DVector& x_dc) override;
  void accept(const spice::AcceptCtx& ctx) override;

  void set_initial_displacement(double x0) noexcept { xstate_.set_initial(x0); }
  double displacement() const noexcept { return xstate_.committed(); }

 private:
  int a_, b_, c_, d_;
  Pwl1 cap_;
  spice::InternalState xstate_;
};

/// Bilinear interpolation over a rectangular (x, v) grid with clamped
/// extrapolation — the 2D piecewise-linear macromodel the paper's static
/// extraction produces ("by repeating this procedure for different voltages
/// and displacements").
class Pwl2 {
 public:
  Pwl2() = default;
  /// `values[i*vs.size() + j]` is the sample at (xs[i], vs[j]). Both axes
  /// must be strictly increasing with >= 2 points.
  Pwl2(std::vector<double> xs, std::vector<double> vs, std::vector<double> values);

  double operator()(double x, double v) const;
  /// Partial derivatives of the active cell (constant per cell).
  double d_dx(double x, double v) const;
  double d_dv(double x, double v) const;

 private:
  struct Cell {
    std::size_t i, j;
    double wx, wv;
  };
  Cell locate(double x, double v) const;
  double at(std::size_t i, std::size_t j) const { return val_[i * vs_.size() + j]; }

  std::vector<double> xs_, vs_, val_;
};

/// Force macromodel F(x, V) distilled from an extraction table (Maxwell-
/// stress column).
Pwl2 force_model(const ExtractionTable& table);

/// Table-driven transducer using *both* extracted quantities: electrical
/// charge from the C(x) table and plate force from the F(x, V) table —
/// the most literal realization of the paper's PXT output. Not exactly
/// energy-conservative (the tables are sampled independently), which is
/// precisely the documented trade-off of extracted macromodels.
class PwlForceTransducer final : public spice::Device {
 public:
  PwlForceTransducer(std::string name, int a, int b, int c, int d, Pwl1 cap_of_x,
                     Pwl2 force_of_xv);

  void bind(spice::Binder& binder) override;
  void evaluate(spice::EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void start_transient(const DVector& x_dc) override;
  void accept(const spice::AcceptCtx& ctx) override;

  void set_initial_displacement(double x0) noexcept { xstate_.set_initial(x0); }

 private:
  int a_, b_, c_, d_;
  Pwl1 cap_;
  Pwl2 force_;
  spice::InternalState xstate_;
};

/// Least-squares polynomial fit of degree `degree` through (x, y) samples.
/// Returns coefficients c0..cN (y = sum c_k x^k).
std::vector<double> polyfit(const std::vector<double>& x, const std::vector<double>& y,
                            int degree);

double polyval(const std::vector<double>& coeffs, double x);

/// Generates HDL-AT source for the extracted device: a transverse
/// electrostatic transducer whose C(x) is the polynomial fit of the PXT
/// table (entity name `pxt_etrans`). Degree 2-3 reproduces the 1/(d+x)
/// curve to well under a percent over the swept range.
std::string generate_hdl_model(const ExtractionTable& table, int poly_degree = 3);

}  // namespace usys::pxt
