// Nonlinear devices and the Newton solver's robustness aids: diode statics,
// clipper circuits, and the gmin/source-stepping fallbacks.
#include <gtest/gtest.h>

#include <cmath>

#include "api/api.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_nonlinear.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys::spice {
namespace {

TEST(Diode, ForwardDropAboutSixHundredMillivolts) {
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int d = ckt.add_node("d", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround, 5.0);
  ckt.add<Resistor>("R1", in, d, 1e3);
  ckt.add<Diode>("D1", d, Circuit::kGround);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_GT(op.at(d), 0.5);
  EXPECT_LT(op.at(d), 0.8);
  // Check the diode equation holds: i_R = i_D.
  const double i_r = (5.0 - op.at(d)) / 1e3;
  const double i_d = 1e-14 * (std::exp(op.at(d) / 0.02585) - 1.0);
  EXPECT_NEAR(i_r, i_d, i_r * 1e-4);
}

TEST(Diode, ReverseBiasLeaksOnlyIs) {
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int d = ckt.add_node("d", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround, -5.0);
  ckt.add<Resistor>("R1", in, d, 1e3);
  ckt.add<Diode>("D1", d, Circuit::kGround);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(d), -5.0, 1e-4);  // whole drive across the diode
}

TEST(Diode, EmissionCoefficientShiftsDrop) {
  auto drop_for = [](double n) {
    Circuit ckt;
    const int in = ckt.add_node("in", Nature::electrical);
    const int d = ckt.add_node("d", Nature::electrical);
    ckt.add<VSource>("V1", in, Circuit::kGround, 5.0);
    ckt.add<Resistor>("R1", in, d, 1e3);
    ckt.add<Diode>("D1", d, Circuit::kGround, 1e-14, n);
    const OpResult op = api::operating_point(ckt);
    return op.converged ? op.at(d) : -1.0;
  };
  EXPECT_GT(drop_for(2.0), drop_for(1.0));
}

TEST(Diode, HighBiasUsesLinearContinuation) {
  // Drive hard enough that exp() alone would overflow; the continuation
  // must keep Newton finite and the current consistent with the resistor.
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int d = ckt.add_node("d", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround, 100.0);
  ckt.add<Resistor>("R1", in, d, 10.0);
  ckt.add<Diode>("D1", d, Circuit::kGround);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  // The continuation region has slope g0 = Is*e^(v_crit/nVt)/nVt ~ 0.39 S,
  // so at ~8 A the junction drops ~21 V - large but finite and consistent.
  EXPECT_GT(op.at(d), 0.7);
  EXPECT_LT(op.at(d), 30.0);
  const double i_r = (100.0 - op.at(d)) / 10.0;
  EXPECT_GT(i_r, 5.0);
}

TEST(Diode, RectifierTransient) {
  // Half-wave rectifier: output follows positive half-cycles minus the
  // drop, holds on the capacitor through negative ones.
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround,
                   std::make_unique<SinWave>(0.0, 5.0, 100.0));
  ckt.add<Diode>("D1", in, out);
  ckt.add<Capacitor>("C1", out, Circuit::kGround, 10e-6);
  ckt.add<Resistor>("RL", out, Circuit::kGround, 10e3);
  TranOptions opts;
  opts.tstop = 30e-3;
  opts.dt_max = 5e-5;
  const TranResult res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  // After a few cycles the output rides near the peak minus the drop.
  const double v_late = res.sample(28e-3, out);
  EXPECT_GT(v_late, 3.5);
  EXPECT_LT(v_late, 5.0);
  // And never goes significantly negative.
  for (std::size_t k = 0; k < res.time.size(); ++k)
    EXPECT_GT(res.at(k, out), -0.1);
}

TEST(Diode, InvalidParametersRejected) {
  Circuit ckt;
  const int a = ckt.add_node("a", Nature::electrical);
  EXPECT_THROW(ckt.add<Diode>("D1", a, Circuit::kGround, -1.0), std::invalid_argument);
  EXPECT_THROW(ckt.add<Diode>("D2", a, Circuit::kGround, 1e-14, 0.0),
               std::invalid_argument);
}

TEST(Diode, BridgeNeedsSteppingFallbacks) {
  // A full-wave bridge with stiff coupling from a cold start is a decent
  // stress test for the gmin/source stepping paths (plain Newton from zero
  // often walks into exp overflow territory).
  Circuit ckt;
  const int p = ckt.add_node("p", Nature::electrical);
  const int q = ckt.add_node("q", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  ckt.add<VSource>("V1", p, q, 10.0);
  ckt.add<Diode>("D1", p, out);
  ckt.add<Diode>("D2", q, out);
  ckt.add<Diode>("D3", Circuit::kGround, p);
  ckt.add<Diode>("D4", Circuit::kGround, q);
  ckt.add<Resistor>("RL", out, Circuit::kGround, 1e3);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_GT(op.at(out), 8.0);  // 10 V minus two drops
  EXPECT_LT(op.at(out), 9.5);
}

}  // namespace
}  // namespace usys::spice
