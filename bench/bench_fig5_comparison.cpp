// Regenerates Figure 5: transient comparison of the linearized equivalent-
// circuit transducer and the behavioral (HDL-A style) model under 5/10/15 V
// pulses with finite rise/fall. Prints the drive and both displacement
// series (decimated), writes full-resolution CSV, and summarizes the
// paper's claims: convergence at 10 V, overshoot at 5 V, undershoot at 15 V.
//
// Options:
//   --integ=be|trap     integration method ablation (default trap)
//   --hdl               use the interpreted HDL-AT Listing 1 for the
//                       behavioral trace instead of the native C++ device
//   --csv=<path>        CSV output (default /tmp/usys_fig5.csv)
#include <cstring>
#include <iostream>

#include "api/api.hpp"
#include "common/table.hpp"
#include "core/resonator_system.hpp"
#include "hdl/interpreter.hpp"
#include "hdl/stdlib.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

using namespace usys;
using namespace usys::core;

namespace {

constexpr double kTotal = 0.18;
constexpr double kRise = 2e-3;

spice::TranResult run_hdl_listing1(const ResonatorParams& p, int* disp_node,
                                   const spice::TranOptions& opts) {
  spice::Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  const int disp = ckt.add_node("disp", Nature::mechanical_translation);
  ckt.add<spice::VSource>("V1", drive, spice::Circuit::kGround,
                          spice::make_fig5_pulse_train({5.0, 10.0, 15.0}, kTotal, kRise,
                                                       kRise));
  ckt.add_device(hdl::instantiate(
      "XT", hdl::stdlib::paper_listing1(), "eletran",
      {{"A", p.geom.area}, {"d", p.geom.gap}, {"er", p.geom.eps_r}},
      {drive, spice::Circuit::kGround, vel, spice::Circuit::kGround}));
  ckt.add<spice::Mass>("M1", vel, p.mass);
  ckt.add<spice::Spring>("K1", vel, spice::Circuit::kGround, p.stiffness);
  ckt.add<spice::Damper>("D1", vel, spice::Circuit::kGround, p.damping);
  ckt.add<spice::StateIntegrator>("XD", disp, vel);
  *disp_node = disp;
  spice::TranOptions o = opts;
  o.tstop = kTotal;
  return api::transient(ckt, o);
}

}  // namespace

int main(int argc, char** argv) {
  spice::TranOptions opts;
  opts.dt_max = 2e-4;
  bool use_hdl = false;
  std::string csv_path = "/tmp/usys_fig5.csv";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--integ=be") == 0)
      opts.method = spice::IntegMethod::backward_euler;
    else if (std::strcmp(argv[i], "--hdl") == 0)
      use_hdl = true;
    else if (std::strncmp(argv[i], "--csv=", 6) == 0)
      csv_path = argv[i] + 6;
  }

  std::cout << "=== Figure 5: linearized vs behavioral transducer model ===\n";
  std::cout << "(pulse train 5/10/15 V, rise/fall " << kRise * 1e3 << " ms, window "
            << kTotal << " s"
            << (use_hdl ? ", behavioral trace = interpreted HDL-AT Listing 1" : "")
            << ")\n\n";

  ResonatorParams p;
  Fig5Trace lin = run_fig5(p, TransducerModelKind::linearized, {5.0, 10.0, 15.0},
                           kTotal, kRise, opts);
  spice::TranResult behav_raw;
  int behav_disp = 2;
  if (use_hdl) {
    behav_raw = run_hdl_listing1(p, &behav_disp, opts);
  } else {
    Fig5Trace b = run_fig5(p, TransducerModelKind::behavioral, {5.0, 10.0, 15.0}, kTotal,
                           kRise, opts);
    behav_raw = std::move(b.raw);
  }
  if (!lin.raw.ok || !behav_raw.ok) {
    std::cerr << "simulation failed: " << lin.raw.error << " / " << behav_raw.error
              << "\n";
    return 1;
  }

  // Decimated series table (the "same rows" view of the figure).
  AsciiTable t({"t [s]", "V(A) [V]", "x behavioral [m]", "x linearized [m]", "ratio lin/behav"});
  std::vector<std::vector<double>> csv_rows;
  for (double time = 0.0; time <= kTotal + 1e-12; time += 2.5e-3) {
    const double v = lin.raw.sample(time, 0);
    const double xb = behav_raw.sample(time, behav_disp);
    const double xl = lin.raw.sample(time, 2);
    t.add_row({fmt_num(time, 4), fmt_num(v, 4), fmt_sci(xb, 3), fmt_sci(xl, 3),
               std::abs(xb) > 1e-12 ? fmt_num(xl / xb, 3) : "-"});
    csv_rows.push_back({time, v, xb, xl});
  }
  t.print(std::cout);
  if (write_csv(csv_path, {"t", "v_drive", "x_behavioral", "x_linearized"}, csv_rows)) {
    std::cout << "\nfull series written to " << csv_path << "\n";
  }

  // Quasi-static comparison late in each plateau.
  const double slot = kTotal / 3.0;
  AsciiTable s({"pulse", "x behavioral [m]", "x linearized [m]", "lin/behav",
                "paper expectation"});
  const struct {
    double v;
    double t;
    const char* expect;
  } probes[] = {{5.0, 0.85 * slot, "overshoot (x2)"},
                {10.0, 1.85 * slot, "converged (x1)"},
                {15.0, 2.85 * slot, "undershoot (x2/3)"}};
  for (const auto& pr : probes) {
    const double xb = behav_raw.sample(pr.t, behav_disp);
    const double xl = lin.raw.sample(pr.t, 2);
    s.add_row({fmt_num(pr.v) + " V", fmt_sci(xb, 4), fmt_sci(xl, 4), fmt_num(xl / xb, 4),
               pr.expect});
  }
  s.print(std::cout);
  std::cout << "\nShape reproduced: the two displacements converge at the 10 V\n"
               "linearization point; the linear model overshoots below it and\n"
               "undershoots above it, exactly as the paper's Fig. 5 reports.\n";
  return 0;
}
