#!/usr/bin/env python3
"""Noise-tolerant benchmark regression gate.

Compares a freshly produced google-benchmark JSON (--current) against a
committed baseline (--baseline). Absolute nanoseconds are meaningless across
machines — CI runners and dev boxes differ in clocks, cores, and load — so
the gate never compares them. Instead it compares each benchmark's time
RELATIVE to the other benchmarks of the same run:

    norm(b) = real_time(b) / geomean(real_time over common benchmarks)

and fails when any benchmark's normalized time grew by more than --threshold
(default 0.30, i.e. 30 %) versus the baseline:

    norm_current(b) / norm_baseline(b) > 1 + threshold  ->  exit 1

A uniformly slower machine cancels out exactly; only a benchmark that got
slower *relative to its peers* — the signature of a real regression — trips
the gate. Benchmarks that appear in only one file are reported but never
gate (new benchmarks land before their baseline does).

Refreshing baselines: download the `bench-trajectory` artifact from a green
main-branch CI run and copy the BENCH_*.json files over bench/baselines/
(see bench/baselines/README.md for the one-liner).

Fault tolerance: a missing baseline is a clean skip (exit 0) — new bench
suites land before their baseline does, and the gate must not block that PR.
A truncated/corrupt --current file (the bench binary died mid-suite) is
salvaged: every complete benchmark object before the truncation point is
still compared, and the benchmarks lost after it are listed as [lost] so the
crash is visible without failing the comparison itself (the harness reports
the binary's own exit separately).

Exit codes: 0 = within threshold (or skipped: no baseline), 1 = regression,
2 = usage/IO error.
"""

import argparse
import json
import math
import os
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def salvage_benchmarks(text):
    """Recovers the complete benchmark objects from a truncated
    google-benchmark JSON: scans the "benchmarks" array and keeps every
    balanced {...} entry before the truncation point. Returns a dict shaped
    like the parsed full file, or None when nothing is recoverable."""
    start = text.find('"benchmarks"')
    if start < 0:
        return None
    start = text.find("[", start)
    if start < 0:
        return None
    entries, depth, obj_start, in_str, esc = [], 0, -1, False, False
    for i in range(start + 1, len(text)):
        c = text[i]
        if in_str:
            if esc:
                esc = False
            elif c == "\\":
                esc = True
            elif c == '"':
                in_str = False
            continue
        if c == '"':
            in_str = True
        elif c == "{":
            if depth == 0:
                obj_start = i
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0 and obj_start >= 0:
                try:
                    entries.append(json.loads(text[obj_start : i + 1]))
                except json.JSONDecodeError:
                    pass
                obj_start = -1
        elif c == "]" and depth == 0:
            break
    return {"benchmarks": entries} if entries else None


def load_times(path, salvage=False):
    """name -> real_time in ns. Prefers `median` aggregates when the run used
    repetitions; otherwise takes the plain iteration entry (first wins).
    With salvage=True a truncated file yields its complete prefix instead of
    aborting (the mid-suite-crash case)."""
    try:
        with open(path) as f:
            text = f.read()
        data = json.loads(text)
    except json.JSONDecodeError as e:
        data = salvage_benchmarks(text) if salvage else None
        if data is None:
            print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
            sys.exit(2)
        print(
            f"bench_compare: {path} is truncated/corrupt "
            f"(bench binary died mid-suite?) — salvaged "
            f"{len(data['benchmarks'])} complete benchmark entr(y/ies)"
        )
    except OSError as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    plain, medians = {}, {}
    for b in data.get("benchmarks", []):
        # Errored benchmarks carry no timings; surface them, don't KeyError.
        if b.get("error_occurred") or "real_time" not in b:
            print(f"  [errored] {b.get('name', '?')} in {path} (skipped)")
            continue
        ns = float(b["real_time"]) * TIME_UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
        if ns <= 0.0:
            continue
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[b.get("run_name", b["name"])] = ns
        else:
            plain.setdefault(b.get("run_name", b["name"]), ns)
    return {**plain, **medians}


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main():
    ap = argparse.ArgumentParser(
        description="ratio-based google-benchmark regression gate",
        epilog="see the module docstring for the comparison model",
    )
    ap.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    ap.add_argument("--current", required=True, help="freshly produced BENCH_*.json")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed relative-time growth before failing (default 0.30 = 30%%)",
    )
    args = ap.parse_args()
    if args.threshold <= 0:
        print("bench_compare: --threshold must be positive", file=sys.stderr)
        return 2

    # A missing baseline is a skip, not an error: new bench suites land
    # before their baseline exists, and the gate must not block that PR.
    if not os.path.exists(args.baseline):
        print(
            f"bench_compare: SKIP — no baseline at {args.baseline} "
            "(new suite? commit one from the bench-trajectory artifact, "
            "see bench/baselines/README.md). Not gated, exit 0."
        )
        return 0

    base = load_times(args.baseline)
    # The current file is the one a mid-suite crash truncates: salvage it.
    cur = load_times(args.current, salvage=True)
    common = sorted(set(base) & set(cur))
    for name in sorted(set(cur) - set(base)):
        print(f"  [new]     {name} (no baseline yet — not gated)")
    for name in sorted(set(base) - set(cur)):
        print(f"  [lost]    {name} (in baseline but not produced — not gated)")
    if len(common) < 2:
        print(
            f"bench_compare: only {len(common)} benchmark(s) common to "
            f"{args.baseline} and {args.current}; relative comparison needs >= 2. "
            "Refresh the baseline (bench/baselines/README.md).",
            file=sys.stderr,
        )
        return 2

    gb = geomean([base[n] for n in common])
    gc = geomean([cur[n] for n in common])
    rows = []
    for name in common:
        ratio = (cur[name] / gc) / (base[name] / gb)
        rows.append((ratio, name))
    rows.sort(reverse=True)

    limit = 1.0 + args.threshold
    failed = [r for r in rows if r[0] > limit]
    print(
        f"bench_compare: {args.current} vs {args.baseline} "
        f"({len(common)} benchmarks, threshold +{args.threshold:.0%})"
    )
    print(f"  {'relative':>9}  benchmark  (>1 = slower than baseline, peers-normalized)")
    for ratio, name in rows:
        marker = "  << REGRESSION" if ratio > limit else ""
        print(f"  {ratio:9.3f}  {name}{marker}")
    if failed:
        if len(failed) >= max(2, len(common) // 2):
            # Relative comparison is zero-sum: a large intentional speedup in
            # one part of the run shifts the geomean and makes everything
            # ELSE read as slower. Point at the real cause.
            print(
                "bench_compare: note — over half the benchmarks read as slower, "
                "which usually means the others got a lot FASTER (geomean "
                "shift), not a broad regression; check the <1.0 rows below the "
                "table and refresh the baseline if so.",
                file=sys.stderr,
            )
        print(
            f"bench_compare: {len(failed)} benchmark(s) regressed beyond "
            f"+{args.threshold:.0%}; if intentional, refresh the baseline "
            "(bench/baselines/README.md).",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
