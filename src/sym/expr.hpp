// Immutable symbolic expression trees.
//
// The paper derives each transducer's port efforts by differentiating the
// internal energy W with respect to the port state variables (steps 1-4 of
// the "Deriving HDL-A behavioral models from transducer internal energy"
// section). This module provides exactly the machinery that recipe needs:
// build W as an expression, differentiate, simplify, then either evaluate
// numerically, generate C++-callable closures, or emit HDL-AT source text.
//
// Expressions are immutable DAGs behind shared_ptr; all operations return
// new expressions. Value semantics at the handle level (Expr is cheap to
// copy), structural sharing underneath.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace usys::sym {

enum class Kind {
  constant,  ///< numeric literal
  variable,  ///< named free variable
  add,
  sub,
  mul,
  div,
  neg,
  pow,   ///< args[0] ^ args[1]
  sin,
  cos,
  tan,
  exp,
  log,
  sqrt,
  abs,
};

class Expr;
struct Node;
using NodePtr = std::shared_ptr<const Node>;

/// One node of the expression DAG. Constant nodes use `value`, variable
/// nodes use `name`, everything else uses `args`.
struct Node {
  Kind kind;
  double value = 0.0;
  std::string name;
  std::vector<Expr> args;
};

/// Handle to an immutable expression. Default-constructed handle is the
/// constant 0 so containers of Expr behave sanely.
class Expr {
 public:
  Expr();                       ///< constant 0
  Expr(double v);               ///< implicit: numeric literal  NOLINT
  Expr(int v) : Expr(static_cast<double>(v)) {}  ///< NOLINT

  static Expr constant(double v);
  static Expr variable(std::string name);
  static Expr make(Kind kind, std::vector<Expr> args);

  Kind kind() const noexcept;
  /// Value of a constant node; throws std::logic_error otherwise.
  double value() const;
  /// Name of a variable node; throws std::logic_error otherwise.
  const std::string& name() const;
  const std::vector<Expr>& args() const noexcept;

  bool is_constant() const noexcept { return kind() == Kind::constant; }
  bool is_constant(double v) const noexcept;
  bool is_variable() const noexcept { return kind() == Kind::variable; }

  /// Structural equality (same shape, same constants, same names).
  bool equals(const Expr& other) const noexcept;

  /// All distinct variable names in deterministic (sorted) order.
  std::vector<std::string> variables() const;

  /// True if `var` occurs in the expression.
  bool depends_on(const std::string& var) const noexcept;

  /// Node identity (for memoized traversals).
  const Node* raw() const noexcept { return node_.get(); }

 private:
  explicit Expr(NodePtr node) : node_(std::move(node)) {}
  NodePtr node_;
  friend Expr make_node(Kind, double, std::string, std::vector<Expr>);
};

// -- Construction helpers ----------------------------------------------------

Expr operator+(const Expr& a, const Expr& b);
Expr operator-(const Expr& a, const Expr& b);
Expr operator*(const Expr& a, const Expr& b);
Expr operator/(const Expr& a, const Expr& b);
Expr operator-(const Expr& a);

Expr pow(const Expr& base, const Expr& exponent);
Expr sin(const Expr& x);
Expr cos(const Expr& x);
Expr tan(const Expr& x);
Expr exp(const Expr& x);
Expr log(const Expr& x);
Expr sqrt(const Expr& x);
Expr abs(const Expr& x);

/// Shorthand for Expr::variable.
Expr var(std::string name);

// -- Core operations (implemented in eval/diff/simplify/printer .cpp) --------

/// Environment mapping variable names to values.
using Env = std::map<std::string, double>;

/// Numeric evaluation; throws std::out_of_range if a variable is unbound,
/// std::domain_error on log/sqrt of negative operands.
double eval(const Expr& e, const Env& env);

/// Partial derivative d e / d var (symbolic; not simplified beyond local
/// folding — call simplify() on the result for readable output).
Expr diff(const Expr& e, const std::string& var);

/// Algebraic simplification: constant folding, identity elimination
/// (x+0, x*1, x*0, x^1, x/1, --x), flattening of nested negation, and
/// constant collection in products. Idempotent.
Expr simplify(const Expr& e);

/// Substitutes `replacement` for every occurrence of variable `var`.
Expr substitute(const Expr& e, const std::string& var, const Expr& replacement);

/// Human-readable infix text, fully parenthesized only where needed.
std::string to_text(const Expr& e);

/// HDL-AT expression syntax (same infix as to_text but with `**`-free pow
/// rendered as repeated multiplication for integer exponents, matching the
/// paper's Listing 1 style).
std::string to_hdl(const Expr& e);

/// LaTeX rendering (\frac for quotients, ^{...} powers, \cdot products) —
/// for documentation generated from derived models.
std::string to_latex(const Expr& e);

/// Number of nodes (for complexity assertions in tests/benches).
std::size_t node_count(const Expr& e);

}  // namespace usys::sym
