// Elaboration: generic binding, init blocks, resolution diagnostics,
// effort pairs, and state-site allocation.
#include <gtest/gtest.h>

#include "hdl/elaborate.hpp"
#include "hdl/parser.hpp"
#include "hdl/stdlib.hpp"

namespace usys::hdl {
namespace {

ElaboratedModel elab_listing1() {
  return elaborate(parse(stdlib::paper_listing1()), "eletran",
                   {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}});
}

TEST(Elaborate, Listing1Binds) {
  const ElaboratedModel m = elab_listing1();
  EXPECT_EQ(m.entity_name, "eletran");
  EXPECT_EQ(m.generic_count, 3);
  ASSERT_EQ(m.pins.size(), 4u);
  EXPECT_EQ(m.integ_site_count, 1);  // x := integ(S)
  EXPECT_EQ(m.ddt_site_count, 1);    // ddt(V)
  EXPECT_TRUE(m.effort_pairs.empty());
  // init block consumed: e0 baked into the frame.
  const int e0_slot = 3;  // generics A,d,er then variables e0,x
  EXPECT_EQ(m.slot_names[static_cast<std::size_t>(e0_slot)], "e0");
  EXPECT_DOUBLE_EQ(m.init_frame[static_cast<std::size_t>(e0_slot)], 8.8542e-12);
}

TEST(Elaborate, GenericDefaultsApply) {
  const auto unit = parse(R"(
ENTITY m IS
  GENERIC (g : analog := 7.0);
  PIN (a, b : electrical);
END ENTITY m;
ARCHITECTURE x OF m IS
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      [a, b].i %= g;
  END RELATION;
END ARCHITECTURE x;
)");
  const ElaboratedModel m = elaborate(std::move(const_cast<DesignUnit&>(unit)), "m", {});
  EXPECT_DOUBLE_EQ(m.init_frame[0], 7.0);
}

TEST(Elaborate, MissingGenericThrows) {
  EXPECT_THROW(
      elaborate(parse(stdlib::paper_listing1()), "eletran", {{"A", 1e-4}, {"d", 1e-4}}),
      ElabError);
}

TEST(Elaborate, GenericBindingCaseInsensitive) {
  EXPECT_NO_THROW(elaborate(parse(stdlib::paper_listing1()), "eletran",
                            {{"a", 1e-4}, {"D", 1e-4}, {"ER", 1.0}}));
}

TEST(Elaborate, UnknownEntityThrows) {
  EXPECT_THROW(elaborate(parse(stdlib::paper_listing1()), "nope", {}), ElabError);
}

TEST(Elaborate, UnknownIdentifierDiagnosed) {
  auto unit = parse(R"(
ENTITY m IS
  PIN (a, b : electrical);
END ENTITY m;
ARCHITECTURE x OF m IS
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      [a, b].i %= undefined_name;
  END RELATION;
END ARCHITECTURE x;
)");
  EXPECT_THROW(elaborate(std::move(unit), "m", {}), ElabError);
}

TEST(Elaborate, UnknownPinDiagnosed) {
  auto unit = parse(R"(
ENTITY m IS
  PIN (a, b : electrical);
END ENTITY m;
ARCHITECTURE x OF m IS
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      [a, z].i %= 1.0;
  END RELATION;
END ARCHITECTURE x;
)");
  EXPECT_THROW(elaborate(std::move(unit), "m", {}), ElabError);
}

TEST(Elaborate, FlowFieldNatureChecked) {
  // '.f %=' on electrical pins must be rejected.
  auto unit = parse(R"(
ENTITY m IS
  PIN (a, b : electrical);
END ENTITY m;
ARCHITECTURE x OF m IS
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      [a, b].f %= 1.0;
  END RELATION;
END ARCHITECTURE x;
)");
  EXPECT_THROW(elaborate(std::move(unit), "m", {}), ElabError);
}

TEST(Elaborate, CurrentReadRequiresEffortPair) {
  auto unit = parse(R"(
ENTITY m IS
  PIN (a, b : electrical);
END ENTITY m;
ARCHITECTURE x OF m IS
  VARIABLE I : analog;
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      I := [a, b].i;
      [a, b].i %= I;
  END RELATION;
END ARCHITECTURE x;
)");
  EXPECT_THROW(elaborate(std::move(unit), "m", {}), ElabError);
}

TEST(Elaborate, EffortPairEnablesCurrentRead) {
  const ElaboratedModel m =
      elaborate(parse(stdlib::electromagnetic()), "emagnetic",
                {{"A", 1e-4}, {"d", 1e-3}, {"N", 100.0}});
  ASSERT_EQ(m.effort_pairs.size(), 1u);
  EXPECT_EQ(m.ddt_site_count, 1);
  EXPECT_EQ(m.integ_site_count, 1);
}

TEST(Elaborate, VariableShadowingGenericRejected) {
  auto unit = parse(R"(
ENTITY m IS
  GENERIC (k : analog);
  PIN (a, b : electrical);
END ENTITY m;
ARCHITECTURE x OF m IS
  VARIABLE k : analog;
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      [a, b].i %= k;
  END RELATION;
END ARCHITECTURE x;
)");
  EXPECT_THROW(elaborate(std::move(unit), "m", {{"k", 1.0}}), ElabError);
}

TEST(Elaborate, InitBlockRejectsPortReads) {
  auto unit = parse(R"(
ENTITY m IS
  PIN (a, b : electrical);
END ENTITY m;
ARCHITECTURE x OF m IS
  VARIABLE y : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      y := [a, b].v;
    PROCEDURAL FOR transient =>
      [a, b].i %= y;
  END RELATION;
END ARCHITECTURE x;
)");
  EXPECT_THROW(elaborate(std::move(unit), "m", {}), ElabError);
}

TEST(Elaborate, UnknownFunctionNamesEntityAndLine) {
  auto unit = parse(R"(
ENTITY m IS
  PIN (a, b : electrical);
END ENTITY m;
ARCHITECTURE x OF m IS
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      [a, b].i %= frobnicate(1.0);
  END RELATION;
END ARCHITECTURE x;
)");
  try {
    elaborate(std::move(unit), "m", {});
    FAIL() << "unknown function must be rejected at elaboration";
  } catch (const ElabError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("entity 'm'"), std::string::npos) << what;
    EXPECT_NE(what.find("frobnicate"), std::string::npos) << what;
    EXPECT_NE(what.find("line"), std::string::npos) << what;
  }
}

TEST(Elaborate, UnknownBinaryOperatorRejected) {
  // The parser only produces the five arithmetic operators, so a foreign
  // operator has to be injected into the AST directly — exactly the path
  // that used to fall through to a silent Dual(0.0) in the executors.
  auto unit = parse(R"(
ENTITY m IS
  PIN (a, b : electrical);
END ENTITY m;
ARCHITECTURE x OF m IS
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      [a, b].i %= 1.0 + 2.0;
  END RELATION;
END ARCHITECTURE x;
)");
  unit.architectures.at(0).blocks.at(0).stmts.at(0).expr->name = "%";
  try {
    elaborate(std::move(unit), "m", {});
    FAIL() << "unknown binary operator must be rejected at elaboration";
  } catch (const ElabError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown binary operator"), std::string::npos) << what;
    EXPECT_NE(what.find("entity 'm'"), std::string::npos) << what;
  }
}

TEST(Elaborate, ElabErrorIsACircuitError) {
  // Elaboration failures must be catchable at the circuit boundary.
  EXPECT_THROW(elaborate(parse(stdlib::paper_listing1()), "nope", {}),
               spice::CircuitError);
}

TEST(Elaborate, ResolvedIndicesStoredInStatements) {
  const ElaboratedModel m = elab_listing1();
  for (const auto& b : m.blocks) {
    for (const auto& s : b.stmts) {
      if (s.kind == StmtKind::assign) {
        EXPECT_GE(s.slot, 0);
        EXPECT_LT(s.slot, static_cast<int>(m.slot_names.size()));
      } else if (s.kind == StmtKind::contribution) {
        EXPECT_GE(s.p1, 0);
        EXPECT_GE(s.p2, 0);
        EXPECT_LT(s.p1, static_cast<int>(m.pins.size()));
        EXPECT_LT(s.p2, static_cast<int>(m.pins.size()));
        // Source pin names survive for diagnostics.
        EXPECT_FALSE(s.pin1.empty());
      }
    }
  }
}

TEST(Elaborate, AllStdlibModelsElaborate) {
  EXPECT_NO_THROW(elaborate(parse(stdlib::transverse_energy()), "etransverse",
                            {{"A", 1e-4}, {"d", 1.5e-4}, {"er", 1.0}}));
  EXPECT_NO_THROW(elaborate(parse(stdlib::parallel_electrostatic()), "eparallel",
                            {{"h", 1e-3}, {"l", 2e-3}, {"d", 1e-5}, {"er", 1.0}}));
  EXPECT_NO_THROW(elaborate(parse(stdlib::electrodynamic()), "edynamic",
                            {{"N", 100.0}, {"r", 5e-3}, {"B", 1.0}}));
}

}  // namespace
}  // namespace usys::hdl
