// Linearized equivalent-circuit transducer models (the paper's baseline).
//
// The paper compares its non-linear HDL-A models against "the linearized
// equivalent circuit method" [Tilmans, ref 1]: around a static operating
// point (V0, x0, C0) the electrostatic transducer becomes a *linear,
// time-invariant* two-port — a fixed capacitor C0 electrically, coupled to
// the mechanical side through a constant transduction factor Gamma:
//
//     i = C0 dV/dt + Gamma_i * u          (motional current)
//     F = Gamma_f * V + k_e * x           (transduction force + softening)
//
// with Gamma_i = Gamma_f = Gamma for a reciprocal coupling. Such a model is
// exact only at the linearization point; Fig. 5 of the paper shows it
// overshooting below and undershooting above it.
//
// Gamma conventions (see EXPERIMENTS.md for the full discussion — the
// paper's printed Gamma value is internally inconsistent with its own
// formula and parameters):
//  * kTangent:  Gamma = dF/dV|V0 = eps*A*V0/(d+x0)^2 (Tilmans' definition);
//    with the drive measured from 0 V this *doubles* the static deflection
//    at V0 (F is quadratic in V).
//  * kSecant:   Gamma = |F(V0)|/V0 = eps*A*V0/(2 (d+x0)^2); the linear
//    system then reproduces the non-linear static deflection exactly at V0 —
//    the "perfect convergence" at the 10 V linearization point seen in
//    Fig. 5 when pulses are driven from 0 V.
#pragma once

#include "core/reference.hpp"
#include "spice/circuit.hpp"

namespace usys::core {

enum class GammaKind {
  tangent,  ///< slope dF/dV at the bias (classic small-signal definition)
  secant,   ///< F(V0)/V0 (matches the paper's Fig. 5 behavior from 0 V)
};

/// Options for deriving the LTI model from an operating point.
struct LinearizationOptions {
  GammaKind gamma = GammaKind::secant;
  bool include_spring_softening = false;  ///< add k_e = dF/dx as negative stiffness
};

/// The derived small-signal element values.
struct LinearizedCoefficients {
  double c0 = 0.0;       ///< bias capacitance [F]
  double gamma = 0.0;    ///< transduction factor [N/V]
  double k_soft = 0.0;   ///< electrostatic (negative) spring constant [N/m]
  double x0 = 0.0;       ///< bias displacement [m]
  double f0 = 0.0;       ///< bias force [N]
};

/// Computes the equivalent-circuit element values for the transverse
/// electrostatic transducer at the resonator system's bias point.
LinearizedCoefficients linearize_transverse(const ResonatorParams& params,
                                            const LinearizationOptions& opts = {});

/// Linear time-invariant equivalent-circuit transducer device:
/// pins (a,b) electrical, (c,d) mechanical; c is the free plate.
///
///   absorbed current at a:  i  = C0 d(va-vb)/dt + Gamma (vc-vd)
///   delivered force at c:   F  = -Gamma (va-vb) - k_soft * x
///
/// (force sign: positive drive voltage attracts, matching the non-linear
/// model's orientation so the two displacement traces are comparable).
/// The coupling is power-conserving up to the intentional linearization.
class LinearizedTransverseElectrostatic final : public spice::Device {
 public:
  LinearizedTransverseElectrostatic(std::string name, int a, int b, int c, int d,
                                    LinearizedCoefficients coeffs);

  void bind(spice::Binder& binder) override;
  void evaluate(spice::EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void start_transient(const DVector& x_dc) override;
  void accept(const spice::AcceptCtx& ctx) override;

  const LinearizedCoefficients& coefficients() const noexcept { return k_; }

 private:
  int a_, b_, c_, d_;
  LinearizedCoefficients k_;
  spice::InternalState xstate_;  ///< displacement, used only when k_soft != 0
};

}  // namespace usys::core
