#include "spice/mna.hpp"

#include <algorithm>
#include <numeric>

namespace usys::spice {

MnaPattern::MnaPattern(const Circuit& circuit) {
  if (!circuit.bound()) throw CircuitError("MnaPattern: circuit not bound");
  n_ = circuit.unknown_count();
  const auto n = static_cast<std::size_t>(n_);
  const auto& devices = circuit.devices();

  complete_ = true;
  footprints_.resize(devices.size());
  std::vector<std::vector<int>> cols(n);
  for (std::size_t d = 0; d < devices.size(); ++d) {
    std::vector<int> u;
    if (!devices[d]->stamp_footprint(u)) {
      complete_ = false;
      break;
    }
    // Ground pins (-1) stamp nowhere; drop them along with duplicates.
    u.erase(std::remove_if(u.begin(), u.end(), [this](int i) { return i < 0 || i >= n_; }),
            u.end());
    std::sort(u.begin(), u.end());
    u.erase(std::unique(u.begin(), u.end()), u.end());
    for (int r : u) {
      auto& row = cols[static_cast<std::size_t>(r)];
      row.insert(row.end(), u.begin(), u.end());
    }
    footprints_[d].unknowns = std::move(u);
  }
  if (!complete_) {
    footprints_.clear();
    return;
  }

  // Always include the full diagonal: gmin lands on node rows, and a
  // structurally present diagonal gives the LU pivoting room on branch rows.
  for (std::size_t i = 0; i < n; ++i) cols[i].push_back(static_cast<int>(i));

  row_ptr_.assign(n + 1, 0);
  for (std::size_t r = 0; r < n; ++r) {
    auto& row = cols[r];
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    row_ptr_[r + 1] = row_ptr_[r] + static_cast<int>(row.size());
  }
  col_idx_.reserve(static_cast<std::size_t>(row_ptr_[n]));
  for (std::size_t r = 0; r < n; ++r)
    col_idx_.insert(col_idx_.end(), cols[r].begin(), cols[r].end());

  diag_slot_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    diag_slot_[i] = slot(static_cast<int>(i), static_cast<int>(i));

  // Compile each device's k x k slot table; every pair is present by
  // construction.
  for (auto& fp : footprints_) {
    const auto k = fp.unknowns.size();
    fp.slots.resize(k * k);
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = 0; j < k; ++j)
        fp.slots[i * k + j] = slot(fp.unknowns[i], fp.unknowns[j]);
  }
}

int MnaPattern::slot(int r, int c) const noexcept {
  const auto first = col_idx_.begin() + row_ptr_[static_cast<std::size_t>(r)];
  const auto last = col_idx_.begin() + row_ptr_[static_cast<std::size_t>(r) + 1];
  const auto it = std::lower_bound(first, last, c);
  if (it == last || *it != c) return -1;
  return static_cast<int>(it - col_idx_.begin());
}

MnaAssembler::MnaAssembler(Circuit& circuit, const MnaPattern& pattern, int threads,
                           ThreadPool* shared_pool)
    : circuit_(circuit), pattern_(pattern), shared_pool_(shared_pool) {
  if (!pattern_.complete()) throw CircuitError("MnaAssembler: incomplete pattern");
  jf_vals_.assign(pattern_.nonzeros(), 0.0);
  jq_vals_.assign(pattern_.nonzeros(), 0.0);
  local_of_.assign(static_cast<std::size_t>(pattern_.size()), -1);
  sink_.jf_vals = jf_vals_.data();
  sink_.jq_vals = jq_vals_.data();
  sink_.row_ptr = pattern_.row_ptr().data();
  sink_.col_idx = pattern_.col_idx().data();

  threads_ = threads == 0 ? ThreadPool::resolve_threads(0) : std::max(1, threads);
  // More chunks than devices is pure overhead; never exceed the device count.
  threads_ = std::min<int>(threads_, std::max<int>(1, static_cast<int>(
                                         circuit_.devices().size())));
  if (threads_ > 1) compile_parallel();
}

void MnaAssembler::compile_parallel() {
  const auto& footprints = pattern_.footprints();
  const auto ndev = footprints.size();
  const auto n = static_cast<std::size_t>(pattern_.size());

  dev_block_off_.assign(ndev + 1, 0);
  dev_vec_off_.assign(ndev + 1, 0);
  std::size_t max_k = 0;
  for (std::size_t d = 0; d < ndev; ++d) {
    const std::size_t k = footprints[d].unknowns.size();
    dev_block_off_[d + 1] = dev_block_off_[d] + k * k;
    dev_vec_off_[d + 1] = dev_vec_off_[d] + k;
    max_k = std::max(max_k, k);
  }
  dev_jf_.assign(dev_block_off_[ndev], 0.0);
  dev_jq_.assign(dev_block_off_[ndev], 0.0);
  dev_f_.assign(dev_vec_off_[ndev], 0.0);
  dev_q_.assign(dev_vec_off_[ndev], 0.0);
  iota_slots_.resize(max_k * max_k);
  std::iota(iota_slots_.begin(), iota_slots_.end(), 0);

  // Gather lists: for each CSR slot (and each residual row), the private
  // block entries that feed it — filled by walking devices in order, so each
  // list replays the serial scatter's accumulation order exactly.
  slot_gather_ptr_.assign(pattern_.nonzeros() + 1, 0);
  row_gather_ptr_.assign(n + 1, 0);
  for (const auto& fp : footprints) {
    const std::size_t k = fp.unknowns.size();
    for (std::size_t e = 0; e < k * k; ++e)
      ++slot_gather_ptr_[static_cast<std::size_t>(fp.slots[e]) + 1];
    for (int u : fp.unknowns) ++row_gather_ptr_[static_cast<std::size_t>(u) + 1];
  }
  std::partial_sum(slot_gather_ptr_.begin(), slot_gather_ptr_.end(),
                   slot_gather_ptr_.begin());
  std::partial_sum(row_gather_ptr_.begin(), row_gather_ptr_.end(),
                   row_gather_ptr_.begin());
  slot_gather_src_.resize(static_cast<std::size_t>(slot_gather_ptr_.back()));
  row_gather_src_.resize(static_cast<std::size_t>(row_gather_ptr_.back()));
  std::vector<int> slot_cursor(slot_gather_ptr_.begin(), slot_gather_ptr_.end() - 1);
  std::vector<int> row_cursor(row_gather_ptr_.begin(), row_gather_ptr_.end() - 1);
  for (std::size_t d = 0; d < ndev; ++d) {
    const auto& fp = footprints[d];
    const std::size_t k = fp.unknowns.size();
    for (std::size_t e = 0; e < k * k; ++e) {
      const auto s = static_cast<std::size_t>(fp.slots[e]);
      slot_gather_src_[static_cast<std::size_t>(slot_cursor[s]++)] =
          static_cast<int>(dev_block_off_[d] + e);
    }
    for (std::size_t i = 0; i < k; ++i) {
      const auto r = static_cast<std::size_t>(fp.unknowns[i]);
      row_gather_src_[static_cast<std::size_t>(row_cursor[r]++)] =
          static_cast<int>(dev_vec_off_[d] + i);
    }
  }

  tl_local_of_.assign(static_cast<std::size_t>(threads_), std::vector<int>(n, -1));
  tl_missed_.assign(static_cast<std::size_t>(threads_), 0);
  if (!shared_pool_) pool_ = std::make_unique<ThreadPool>(threads_);
}

void MnaAssembler::assemble(const EvalCtx& ctx_proto, const DVector& x, DVector& f,
                            DVector& q) {
  if (threads_ > 1) {
    assemble_parallel(ctx_proto, x, f, q);
  } else {
    assemble_serial(ctx_proto, x, f, q);
  }
}

void MnaAssembler::assemble_serial(const EvalCtx& ctx_proto, const DVector& x,
                                   DVector& f, DVector& q) {
  const auto n = static_cast<std::size_t>(pattern_.size());
  f.assign(n, 0.0);
  q.assign(n, 0.0);
  std::fill(jf_vals_.begin(), jf_vals_.end(), 0.0);
  std::fill(jq_vals_.begin(), jq_vals_.end(), 0.0);

  EvalCtx ctx = ctx_proto;
  ctx.x = &x;
  ctx.f = &f;
  ctx.q = &q;
  ctx.jf = nullptr;
  ctx.jq = nullptr;
  ctx.sparse = &sink_;
  sink_.missed = 0;

  const auto& devices = circuit_.devices();
  const auto& footprints = pattern_.footprints();
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const auto& fp = footprints[d];
    for (std::size_t i = 0; i < fp.unknowns.size(); ++i)
      local_of_[static_cast<std::size_t>(fp.unknowns[i])] = static_cast<int>(i);
    sink_.local_of = local_of_.data();
    sink_.slots = fp.slots.data();
    sink_.k = static_cast<int>(fp.unknowns.size());
    try {
      devices[d]->evaluate(ctx);
    } catch (...) {
      // Keep the scratch map clean even when a device throws: a later
      // assemble() on this assembler must not see stale local indices.
      for (int u : fp.unknowns) local_of_[static_cast<std::size_t>(u)] = -1;
      throw;
    }
    for (int u : fp.unknowns) local_of_[static_cast<std::size_t>(u)] = -1;
  }
  if (sink_.missed > 0) {
    throw CircuitError("sparse MNA assembly: a device stamped outside the compiled "
                       "pattern (stamp_footprint() declaration is not a superset)");
  }
}

void MnaAssembler::assemble_parallel(const EvalCtx& ctx_proto, const DVector& x,
                                     DVector& f, DVector& q) {
  const auto n = static_cast<std::size_t>(pattern_.size());
  const auto nnz = pattern_.nonzeros();
  const auto& devices = circuit_.devices();
  const auto& footprints = pattern_.footprints();
  const auto ndev = devices.size();
  f.resize(n);
  q.resize(n);

  // Phase 1: chunked device evaluation into private per-device blocks. Each
  // device runs exactly once (stateful devices never race); each chunk has
  // its own local_of scratch and sink.
  pool().run(threads_, [&](int chunk) {
    const std::size_t lo = ndev * static_cast<std::size_t>(chunk) /
                           static_cast<std::size_t>(threads_);
    const std::size_t hi = ndev * (static_cast<std::size_t>(chunk) + 1) /
                           static_cast<std::size_t>(threads_);
    auto& local_of = tl_local_of_[static_cast<std::size_t>(chunk)];

    SparseStampSink sink;
    sink.local_of = local_of.data();
    EvalCtx ctx = ctx_proto;
    ctx.x = &x;
    ctx.f = nullptr;
    ctx.q = nullptr;
    ctx.jf = nullptr;
    ctx.jq = nullptr;
    ctx.sparse = &sink;

    for (std::size_t d = lo; d < hi; ++d) {
      const auto& fp = footprints[d];
      const std::size_t k = fp.unknowns.size();
      const std::size_t boff = dev_block_off_[d];
      const std::size_t voff = dev_vec_off_[d];
      std::fill_n(dev_jf_.begin() + static_cast<std::ptrdiff_t>(boff), k * k, 0.0);
      std::fill_n(dev_jq_.begin() + static_cast<std::ptrdiff_t>(boff), k * k, 0.0);
      std::fill_n(dev_f_.begin() + static_cast<std::ptrdiff_t>(voff), k, 0.0);
      std::fill_n(dev_q_.begin() + static_cast<std::ptrdiff_t>(voff), k, 0.0);
      for (std::size_t i = 0; i < k; ++i)
        local_of[static_cast<std::size_t>(fp.unknowns[i])] = static_cast<int>(i);
      sink.slots = iota_slots_.data();
      sink.k = static_cast<int>(k);
      sink.jf_vals = dev_jf_.data() + boff;
      sink.jq_vals = dev_jq_.data() + boff;
      sink.f_local = dev_f_.data() + voff;
      sink.q_local = dev_q_.data() + voff;
      try {
        devices[d]->evaluate(ctx);
      } catch (...) {
        // A stale local_of entry would turn a later pass's stamps into
        // out-of-bounds block writes; clean up before the pool rethrows.
        for (int u : fp.unknowns) local_of[static_cast<std::size_t>(u)] = -1;
        throw;
      }
      for (int u : fp.unknowns) local_of[static_cast<std::size_t>(u)] = -1;
    }
    tl_missed_[static_cast<std::size_t>(chunk)] = sink.missed;
  });

  // Phase 2: ordered gather. Slot/row ranges are disjoint across chunks and
  // each reduction visits its sources in device order, so the result is
  // bit-identical to the serial scatter for any thread count.
  pool().run(threads_, [&](int chunk) {
    const std::size_t c = static_cast<std::size_t>(chunk);
    const std::size_t t = static_cast<std::size_t>(threads_);
    const std::size_t s_lo = nnz * c / t;
    const std::size_t s_hi = nnz * (c + 1) / t;
    for (std::size_t s = s_lo; s < s_hi; ++s) {
      double af = 0.0;
      double aq = 0.0;
      for (int g = slot_gather_ptr_[s]; g < slot_gather_ptr_[s + 1]; ++g) {
        const auto src = static_cast<std::size_t>(slot_gather_src_[static_cast<std::size_t>(g)]);
        af += dev_jf_[src];
        aq += dev_jq_[src];
      }
      jf_vals_[s] = af;
      jq_vals_[s] = aq;
    }
    const std::size_t r_lo = n * c / t;
    const std::size_t r_hi = n * (c + 1) / t;
    for (std::size_t r = r_lo; r < r_hi; ++r) {
      double af = 0.0;
      double aq = 0.0;
      for (int g = row_gather_ptr_[r]; g < row_gather_ptr_[r + 1]; ++g) {
        const auto src = static_cast<std::size_t>(row_gather_src_[static_cast<std::size_t>(g)]);
        af += dev_f_[src];
        aq += dev_q_[src];
      }
      f[r] = af;
      q[r] = aq;
    }
  });

  long missed = 0;
  for (long m : tl_missed_) missed += m;
  if (missed > 0) {
    throw CircuitError("parallel MNA assembly: a device stamped outside its declared "
                       "footprint (cross-footprint stamps require serial assembly)");
  }
}

}  // namespace usys::spice
