// Regenerates Table 1: generalized variables for different physical domains,
// and validates the effort*flow = power pairing numerically in each domain by
// solving a one-element circuit per nature.
#include <iostream>

#include "api/api.hpp"
#include "common/nature.hpp"
#include "common/table.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

using namespace usys;

int main() {
  std::cout << "=== Table 1: generalised variables for different physical domains ===\n\n";
  AsciiTable t({"domain", "effort e", "flow f", "state q", "momentum p"});
  for (int i = 0; i < kNatureCount; ++i) {
    const auto& info = nature_info(nature_at(i));
    t.add_row({std::string(info.name),
               std::string(info.effort_name) + " [" + std::string(info.effort_unit) + "]",
               std::string(info.flow_name) + " [" + std::string(info.flow_unit) + "]",
               std::string(info.state_name) + " [" + std::string(info.state_unit) + "]",
               std::string(info.momentum_name) + " [" + std::string(info.momentum_unit) +
                   "]"});
  }
  t.print(std::cout);

  std::cout << "\n--- power pairing check: flow source into unit 'resistor' per domain ---\n";
  AsciiTable p({"domain", "flow in", "effort out", "power e*f [W]"});
  for (int i = 0; i < kNatureCount; ++i) {
    const Nature n = nature_at(i);
    spice::Circuit ckt;
    const int node = ckt.add_node("n", n);
    const double flow = 0.25;
    const double r = 8.0;
    ckt.add<spice::ISource>("F", spice::Circuit::kGround, node, flow, n);
    ckt.add<spice::Resistor>("R", node, spice::Circuit::kGround, r, n);
    const auto op = api::operating_point(ckt);
    const double effort = op.at(node);
    p.add_row({std::string(to_string(n)), fmt_num(flow), fmt_num(effort),
               fmt_num(effort * flow)});
  }
  p.print(std::cout);
  std::cout << "\nExpected effort = flow*R = 2 and power = 0.5 W in every domain\n"
            << "(the FI analogy makes the nodal solver domain-blind).\n";
  return 0;
}
