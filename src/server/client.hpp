// usim --client: the thin client side of the simulation server.
//
// Connects to a `usim --serve` socket, sends ONE request line, and streams
// the response frames verbatim to the output stream (line-delimited JSON is
// the client's output format — downstream tooling parses the same frames the
// wire carries). The exit code is recovered from the terminal frame:
//
//   done  -> its "exit_code" field (the usim 0/1/2/3 contract)
//   busy  -> 1 (queue full: a retryable failure, distinct from usage errors)
//   pong / bye / stats -> 0
//   transport failure (no socket, EOF before a terminal frame) -> 2
#pragma once

#include <iosfwd>
#include <string>

#include "server/protocol.hpp"

namespace usys::server {

/// Sends `req` to the daemon at `socket_path`, prints every response frame
/// line to `out`, and returns the usim exit code. Transport problems are
/// described on `err`.
int run_client(const std::string& socket_path, const Request& req, std::ostream& out,
               std::ostream& err);

}  // namespace usys::server
