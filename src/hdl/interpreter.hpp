// The HDL-AT interpreter: wraps an ElaboratedModel as a spice::Device.
//
// Each Newton iteration re-executes the model's procedural blocks with
// forward-mode AD duals seeded on the instance's unknowns (pin node efforts
// and effort-branch flows), so flow/effort contributions land in the MNA
// residual together with exact Jacobian entries.
//
// Dynamic operators use direct integrator substitution:
//  * ddt(e): value = a0*e + hist with a0 = 1/c1 from the step coefficients
//    (backward-Euler or trapezoidal history kept per call site);
//  * integ(e): value = s_prev + c0*e_prev + c1*e per call site.
// During DC, ddt() evaluates to 0 and integ() to its initial value — the
// HDL-A semantics the paper's models rely on (`x := integ(S)` pins the
// displacement at 0 in the operating point).
//
// AC: the device is linearized with internal integ() states frozen (the
// same convention the native transducers use — see DESIGN.md); ddt() terms
// are separated into the jq matrix by a two-pass gradient extraction so
// (Jf + jw Jq) sees the correct capacitive terms.
//
// This interpretation path is intentionally *not* compiled: the paper
// reports a ~10x simulation-performance penalty for HDL-A models versus
// native SPICE primitives and attributes it to the model compiler;
// bench_perf_hdl_overhead measures our equivalent figure.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "hdl/elaborate.hpp"
#include "spice/circuit.hpp"
#include "sym/dual.hpp"

namespace usys::hdl {

class HdlDevice final : public spice::Device {
 public:
  /// `node_per_pin` maps each model pin (declaration order) to a circuit
  /// node id (ground = -1 allowed).
  HdlDevice(std::string name, ElaboratedModel model, std::vector<int> node_per_pin);

  void bind(spice::Binder& binder) override;
  void evaluate(spice::EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void start_transient(const DVector& x_dc) override;
  void accept(const spice::AcceptCtx& ctx) override;

  const ElaboratedModel& model() const noexcept { return model_; }

  /// Committed value of an integ() call site (e.g. the displacement state
  /// of the paper's Listing 1), indexed in source order.
  double integ_state(int site) const;

 private:
  struct DdtSite {
    double u_prev = 0.0;
    double udot_prev = 0.0;
  };
  struct IntegSite {
    double s0 = 0.0;
    double s_prev = 0.0;
    double e_prev = 0.0;
  };

  enum class Pass {
    dc,          ///< ddt = 0, integ = initial
    dc_ddt,      ///< like dc but ddt passes gradients through (jq extraction)
    transient,   ///< full integrator substitution
    commit,      ///< transient formulas + state commit (post-acceptance)
  };

  struct Frame;
  sym::Dual eval_expr(const ExprNode& e, Frame& fr);
  void run(spice::EvalCtx* ctx, Pass pass, const DVector& x);

  ElaboratedModel model_;
  std::vector<int> nodes_;           ///< node id per pin
  std::vector<int> branch_of_pair_;  ///< branch unknown per effort pair
  std::vector<int> seed_unknowns_;   ///< global unknown per AD seed slot
  std::vector<DdtSite> ddt_;
  std::vector<IntegSite> integ_;
  std::set<const Stmt*> asserted_;   ///< ASSERT sites already reported

  int seed_of(int global) const;     ///< -1 if not seeded (ground)
};

/// Convenience: parse + elaborate + instantiate in one call.
/// `source` may contain several entities; `entity` picks one.
std::unique_ptr<HdlDevice> instantiate(const std::string& device_name,
                                       const std::string& source,
                                       const std::string& entity,
                                       const std::map<std::string, double>& generics,
                                       const std::vector<int>& node_per_pin);

}  // namespace usys::hdl
