// 2D electrostatic FEM: -div(eps grad phi) = 0 with Dirichlet electrodes.
//
// This is the device-level simulation layer the paper delegates to ANSYS.
// P1 (linear triangle) elements give a piecewise-constant field E = -grad
// phi per element; post-processing provides the quantities PXT extracts:
// stored energy, capacitance, and the electrostatic force on an electrode
// via the Maxwell stress tensor f = 1/2 eps E^2 n integrated over the
// electrode surface (the equation printed in the paper's PXT section) or,
// alternatively, by virtual work dW/dx between two solutions.
#pragma once

#include <functional>

#include "fem/mesh.hpp"
#include "fem/sparse.hpp"

namespace usys::fem {

/// Problem definition: mesh + per-region relative permittivity + electrode
/// potentials by boundary tag.
struct ElectrostaticProblem {
  const Mesh* mesh = nullptr;
  double eps0 = 8.8542e-12;            ///< paper's rounded value by default
  std::vector<double> eps_r = {1.0};   ///< per region id
  double v_bottom = 0.0;               ///< potential of BoundaryTag::bottom nodes
  double v_top = 0.0;                  ///< potential of BoundaryTag::top nodes
};

/// A solved field.
struct ElectrostaticSolution {
  std::vector<double> phi;   ///< nodal potentials
  bool converged = false;
  int cg_iterations = 0;

  /// Piecewise-constant element field (Ex, Ey) of element e.
  // (filled by solve_electrostatics)
  std::vector<double> ex;
  std::vector<double> ey;
};

/// Assembles and solves the Dirichlet problem. Throws std::invalid_argument
/// on malformed problems (missing mesh, empty electrodes).
ElectrostaticSolution solve_electrostatics(const ElectrostaticProblem& problem);

/// Field energy per unit depth: W' = 1/2 integral(eps |E|^2) dA  [J/m].
double field_energy(const ElectrostaticProblem& p, const ElectrostaticSolution& s);

/// Capacitance per unit depth from the energy: C' = 2 W' / V^2  [F/m].
double capacitance_per_depth(const ElectrostaticProblem& p, const ElectrostaticSolution& s);

/// Electrostatic force per unit depth on the electrode with `tag`, by
/// integrating the Maxwell stress 1/2 eps E^2 over a contour just inside
/// the domain (element-adjacent evaluation; y-component returned, the
/// normal direction of the plate problem). Negative = attraction toward
/// the other electrode for the top plate.  [N/m]
double maxwell_force_per_depth(const ElectrostaticProblem& p, const ElectrostaticSolution& s,
                               BoundaryTag tag);

/// Virtual-work force per unit depth in the direction of increasing gap:
/// F = +dW/dgap at constant voltage (co-energy theorem), evaluated by a
/// central difference over `energy_of_gap` (which must solve the field and
/// return the energy per depth for a given gap). Negative = attraction.
/// [N/m]
double virtual_work_force_per_depth(const std::function<double(double)>& energy_of_gap,
                                    double gap, double delta);

}  // namespace usys::fem
