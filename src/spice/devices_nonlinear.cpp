#include "spice/devices_nonlinear.hpp"

#include <cmath>
#include <stdexcept>

namespace usys::spice {

JouleHeater::JouleHeater(std::string name, int a, int b, int thermal, double r0,
                         double temp_coeff, double t_ref)
    : Device(std::move(name)),
      a_(a),
      b_(b),
      t_(thermal),
      r0_(r0),
      tc_(temp_coeff),
      tref_(t_ref) {
  if (r0_ <= 0.0)
    throw std::invalid_argument("JouleHeater '" + this->name() + "': r0 must be > 0");
}

void JouleHeater::bind(Binder& binder) {
  binder.require_nature(a_, Nature::electrical, name());
  binder.require_nature(b_, Nature::electrical, name());
  binder.require_nature(t_, Nature::thermal, name());
}

bool JouleHeater::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_, t_});
  return true;
}

void JouleHeater::evaluate(EvalCtx& ctx) {
  const double v = ctx.v(a_) - ctx.v(b_);
  const double temp = ctx.v(t_);
  // Resistance floor guards against runaway negative-tc operating points.
  double r = r0_ * (1.0 + tc_ * (temp - tref_));
  double dr_dt = r0_ * tc_;
  if (r < 0.01 * r0_) {
    r = 0.01 * r0_;
    dr_dt = 0.0;
  }
  const double g = 1.0 / r;
  const double i = v * g;

  // Electrical port.
  ctx.f_add(a_, i);
  ctx.f_add(b_, -i);
  ctx.jf_add(a_, a_, g);
  ctx.jf_add(a_, b_, -g);
  ctx.jf_add(b_, a_, -g);
  ctx.jf_add(b_, b_, g);
  const double di_dt = -v * dr_dt / (r * r);
  ctx.jf_add(a_, t_, di_dt);
  ctx.jf_add(b_, t_, -di_dt);

  // Thermal port: Joule power delivered INTO the thermal node (absorbed
  // flow at t is -P).
  const double p = v * i;
  ctx.f_add(t_, -p);
  const double dp_dv = 2.0 * v * g;
  ctx.jf_add(t_, a_, -dp_dv);
  ctx.jf_add(t_, b_, dp_dv);
  ctx.jf_add(t_, t_, v * v * dr_dt / (r * r));
}

Diode::Diode(std::string name, int a, int b, double i_sat, double emission,
             double v_thermal)
    : Device(std::move(name)), a_(a), b_(b), is_(i_sat), n_(emission), vt_(v_thermal) {
  if (is_ <= 0.0 || n_ <= 0.0 || vt_ <= 0.0)
    throw std::invalid_argument("Diode '" + this->name() + "': parameters must be > 0");
  // Continue the exponential linearly once exp() would exceed ~1e12 * Is.
  v_crit_ = n_ * vt_ * std::log(1e12);
}

void Diode::bind(Binder& binder) {
  binder.require_nature(a_, Nature::electrical, name());
  binder.require_nature(b_, Nature::electrical, name());
}

bool Diode::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_});
  return true;
}

void Diode::evaluate(EvalCtx& ctx) {
  const double vd = ctx.v(a_) - ctx.v(b_);
  double i = 0.0;
  double g = 0.0;
  const double nvt = n_ * vt_;
  if (vd <= v_crit_) {
    const double e = std::exp(vd / nvt);
    i = is_ * (e - 1.0);
    g = is_ * e / nvt;
  } else {
    // Linear continuation with matching value and slope at v_crit.
    const double e = std::exp(v_crit_ / nvt);
    const double i0 = is_ * (e - 1.0);
    const double g0 = is_ * e / nvt;
    i = i0 + g0 * (vd - v_crit_);
    g = g0;
  }
  ctx.f_add(a_, i);
  ctx.f_add(b_, -i);
  ctx.jf_add(a_, a_, g);
  ctx.jf_add(a_, b_, -g);
  ctx.jf_add(b_, a_, -g);
  ctx.jf_add(b_, b_, g);
}

}  // namespace usys::spice
