// Passive two-terminal elements, electrical and mechanical.
//
// Under the paper's FI analogy the mechanical elements are the electrical
// ones re-typed:  mass <-> capacitor (C = m), spring <-> inductor (L = 1/k),
// damper <-> resistor (conductance = alpha). We provide the mechanical
// elements as first-class devices so netlists read like the physics, while
// sharing the stamp math with their electrical twins.
#pragma once

#include "spice/circuit.hpp"

namespace usys::spice {

/// Linear resistor, i = (va - vb)/R. Nature-generic (verified at bind).
class Resistor : public Device {
 public:
  Resistor(std::string name, int a, int b, double resistance,
           Nature nature = Nature::electrical);
  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void lint(LintSink& sink) const override;
  double resistance() const noexcept { return r_; }

 protected:
  /// Parameter checks of lint(); Damper re-labels them in damping terms.
  virtual void lint_values(LintSink& sink) const;

 private:
  int a_, b_;
  double r_;
  Nature nature_;
};

/// Linear capacitor, q = C (va - vb).
class Capacitor : public Device {
 public:
  Capacitor(std::string name, int a, int b, double capacitance,
            Nature nature = Nature::electrical);
  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void lint(LintSink& sink) const override;
  double capacitance() const noexcept { return c_; }

 protected:
  virtual void lint_values(LintSink& sink) const;

 private:
  int a_, b_;
  double c_;
  Nature nature_;
};

/// Linear inductor with a branch current unknown; flux = L i.
class Inductor : public Device {
 public:
  Inductor(std::string name, int a, int b, double inductance,
           Nature nature = Nature::electrical);
  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void lint(LintSink& sink) const override;
  double inductance() const noexcept { return l_; }
  /// Unknown index of the branch current (valid after bind).
  int branch() const noexcept { return br_; }

 protected:
  virtual void lint_values(LintSink& sink) const;

 private:
  int a_, b_;
  double l_;
  Nature nature_;
  int br_ = -1;
};

/// Point mass attached between a mechanical node and the fixed frame:
/// F = m dv/dt. (The paper's Fig. 4 shows it as C = m.)
class Mass : public Capacitor {
 public:
  Mass(std::string name, int node, double mass_kg)
      : Capacitor(std::move(name), node, Circuit::kGround, mass_kg,
                  Nature::mechanical_translation) {}
  double mass() const noexcept { return capacitance(); }

 protected:
  void lint_values(LintSink& sink) const override;
};

/// Linear spring between two mechanical nodes: F = k * integral(v) dt,
/// i.e. an inductor with L = 1/k. Its branch flow *is* the spring force, so
/// the DC solution exposes the static force balance directly.
class Spring : public Inductor {
 public:
  Spring(std::string name, int a, int b, double stiffness)
      : Inductor(std::move(name), a, b, 1.0 / stiffness, Nature::mechanical_translation),
        k_(stiffness) {}
  double stiffness() const noexcept { return k_; }
  /// Spring displacement = force / k; force is the branch unknown.
  double displacement(const DVector& x) const {
    return x.at(static_cast<std::size_t>(branch())) / k_;
  }

 protected:
  void lint_values(LintSink& sink) const override;

 private:
  double k_;
};

/// Viscous damper: F = alpha * (va - vb), i.e. a resistor with R = 1/alpha.
class Damper : public Resistor {
 public:
  Damper(std::string name, int a, int b, double alpha)
      : Resistor(std::move(name), a, b, 1.0 / alpha, Nature::mechanical_translation),
        alpha_(alpha) {}
  double alpha() const noexcept { return alpha_; }

 protected:
  void lint_values(LintSink& sink) const override;

 private:
  double alpha_;
};

}  // namespace usys::spice
