#include "spice/solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace usys::spice {

NewtonSolver::NewtonSolver(Circuit& circuit, NewtonOptions opts)
    : circuit_(circuit), opts_(opts) {
  circuit_.bind_all();
  const auto n = static_cast<std::size_t>(circuit_.unknown_count());
  f_.resize(n);
  q_.resize(n);
  resid_.resize(n);
  jf_.resize(n, n);
  jq_.resize(n, n);
  jacobian_.resize(n, n);
}

void NewtonSolver::stamp(EvalCtx ctx_proto, const DVector& x, DVector& f, DVector& q,
                         DMatrix& jf, DMatrix& jq) {
  const std::size_t n = x.size();
  f.assign(n, 0.0);
  q.assign(n, 0.0);
  jf.resize(n, n);
  jq.resize(n, n);
  jf.fill(0.0);
  jq.fill(0.0);
  EvalCtx ctx = ctx_proto;
  ctx.x = &x;
  ctx.f = &f;
  ctx.q = &q;
  ctx.jf = &jf;
  ctx.jq = &jq;
  for (const auto& dev : circuit_.devices()) dev->evaluate(ctx);
  // gmin ties every *node* row weakly to ground, keeping the Jacobian
  // nonsingular for floating subnets (branch rows are exact constraints and
  // must not be polluted).
  if (opts_.gmin > 0.0) {
    const auto nodes = static_cast<std::size_t>(circuit_.node_count());
    for (std::size_t i = 0; i < nodes; ++i) {
      f[i] += opts_.gmin * x[i];
      jf(i, i) += opts_.gmin;
    }
  }
}

NewtonResult NewtonSolver::solve(EvalCtx ctx_proto, double a0, const DVector& hist,
                                 DVector& x) {
  NewtonResult result;
  const std::size_t n = x.size();
  const DVector& abstol = circuit_.abstol();

  for (int iter = 0; iter < opts_.max_iters; ++iter) {
    stamp(ctx_proto, x, f_, q_, jf_, jq_);

    // resid = f + a0*q + hist ; jacobian = Jf + a0*Jq
    for (std::size_t i = 0; i < n; ++i) {
      resid_[i] = f_[i] + a0 * q_[i] + (hist.empty() ? 0.0 : hist[i]);
    }
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        jacobian_(r, c) = jf_(r, c) + a0 * jq_(r, c);
      }
    }

    // Solve J dx = -resid.
    DVector dx(n);
    for (std::size_t i = 0; i < n; ++i) dx[i] = -resid_[i];
    DMatrix j = jacobian_;  // LU destroys its input
    try {
      lu_solve(j, dx);
    } catch (const SingularMatrixError&) {
      log_debug("newton: singular jacobian at iter " + std::to_string(iter));
      result.converged = false;
      result.iterations = iter + 1;
      return result;
    }

    // Optional step limiting (helps strongly nonlinear gap-closing regions).
    if (opts_.damping_limit > 0.0) {
      double scale = 1.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double mag = std::abs(dx[i]);
        if (mag > opts_.damping_limit) scale = std::min(scale, opts_.damping_limit / mag);
      }
      if (scale < 1.0) {
        for (auto& d : dx) d *= scale;
      }
    }

    double max_weighted = 0.0;
    bool finite = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(dx[i])) {
        finite = false;
        break;
      }
      const double tol = opts_.reltol * std::max(std::abs(x[i]), std::abs(x[i] + dx[i])) +
                         abstol[i];
      max_weighted = std::max(max_weighted, std::abs(dx[i]) / tol);
      x[i] += dx[i];
    }
    result.iterations = iter + 1;
    result.final_error = max_weighted;
    if (!finite) {
      result.converged = false;
      return result;
    }
    if (max_weighted < 1.0) {
      result.converged = true;
      return result;
    }
  }
  result.converged = false;
  return result;
}

DcResult solve_dc(Circuit& circuit, const DcOptions& opts) {
  circuit.bind_all();
  DcResult out;
  out.x.assign(static_cast<std::size_t>(circuit.unknown_count()), 0.0);

  EvalCtx ctx;
  ctx.mode = AnalysisMode::dc;
  ctx.time = 0.0;

  // 1. Plain Newton from the zero vector.
  {
    NewtonSolver solver(circuit, opts.newton);
    DVector x = out.x;
    const NewtonResult r = solver.solve(ctx, 0.0, {}, x);
    out.total_newton_iters += r.iterations;
    if (r.converged) {
      out.converged = true;
      out.x = std::move(x);
      return out;
    }
  }

  // 2. gmin stepping: start with a heavy shunt and relax it geometrically,
  //    warm-starting each stage with the previous solution.
  if (opts.allow_gmin_stepping) {
    DVector x(static_cast<std::size_t>(circuit.unknown_count()), 0.0);
    bool ok = true;
    for (double gmin = 1e-2; gmin >= opts.newton.gmin * 0.99; gmin /= 10.0) {
      NewtonOptions stage = opts.newton;
      stage.gmin = gmin;
      NewtonSolver solver(circuit, stage);
      const NewtonResult r = solver.solve(ctx, 0.0, {}, x);
      out.total_newton_iters += r.iterations;
      if (!r.converged) {
        ok = false;
        break;
      }
    }
    if (ok) {
      out.converged = true;
      out.used_gmin_stepping = true;
      out.x = std::move(x);
      return out;
    }
  }

  // 3. Source stepping: ramp all independent sources from 0 to 100 %.
  if (opts.allow_source_stepping) {
    DVector x(static_cast<std::size_t>(circuit.unknown_count()), 0.0);
    bool ok = true;
    NewtonSolver solver(circuit, opts.newton);
    for (double scale = 0.1; scale <= 1.0 + 1e-12; scale += 0.1) {
      EvalCtx sctx = ctx;
      sctx.source_scale = scale;
      const NewtonResult r = solver.solve(sctx, 0.0, {}, x);
      out.total_newton_iters += r.iterations;
      if (!r.converged) {
        ok = false;
        break;
      }
    }
    if (ok) {
      out.converged = true;
      out.used_source_stepping = true;
      out.x = std::move(x);
      return out;
    }
  }

  log_warn("solve_dc: no convergence (plain, gmin stepping, source stepping all failed)");
  return out;
}

}  // namespace usys::spice
