// Monte Carlo sweep fabric (spice/sweep.hpp mc_grid + friends): dist-spec
// parsing, the .param/.measure netlist pre-passes, grid composition
// (axes x corners x MC draws), and the determinism guarantees — grids and
// SweepRunner results bit-identical across thread counts, shard splits, and
// checkpoint resume — plus the shard-unique result-file naming fix.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "spice/netlist.hpp"
#include "spice/stats.hpp"
#include "spice/sweep.hpp"

namespace usys::spice {
namespace {

// ---------------------------------------------------------------------------
// Dist-spec and sweep-entry parsing
// ---------------------------------------------------------------------------

TEST(DistSpec, ParsesAllKinds) {
  auto n = parse_dist_spec("r", "normal(1k,50)");
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->kind, ParamDist::Kind::normal);
  EXPECT_DOUBLE_EQ(n->a, 1000.0);
  EXPECT_DOUBLE_EQ(n->b, 50.0);
  EXPECT_TRUE(n->is_random());

  auto g = parse_dist_spec("r", "gauss(0,1)");  // SPICE-familiar alias
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->kind, ParamDist::Kind::normal);

  auto u = parse_dist_spec("v", "uniform(4.5,5.5)");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->kind, ParamDist::Kind::uniform);
  EXPECT_DOUBLE_EQ(u->a, 4.5);
  EXPECT_DOUBLE_EQ(u->b, 5.5);

  auto c = parse_dist_spec("t", "corner(-40,25,125)");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->kind, ParamDist::Kind::corner);
  EXPECT_FALSE(c->is_random());
  ASSERT_EQ(c->values.size(), 3u);
  EXPECT_DOUBLE_EQ(c->values[1], 25.0);

  auto k = parse_dist_spec("x", "2.5u");  // plain number = constant
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(k->kind, ParamDist::Kind::constant);
  EXPECT_DOUBLE_EQ(k->a, 2.5e-6);
}

TEST(DistSpec, RejectsMalformedSpecs) {
  std::string why;
  EXPECT_FALSE(parse_dist_spec("r", "normal(1k,-5)", &why));  // sigma < 0
  EXPECT_FALSE(why.empty());
  EXPECT_FALSE(parse_dist_spec("r", "uniform(2,1)"));  // hi < lo
  EXPECT_FALSE(parse_dist_spec("r", "corner()"));      // empty corner list
  EXPECT_FALSE(parse_dist_spec("r", "normal(1)"));     // arity
  EXPECT_FALSE(parse_dist_spec("r", "cauchy(0,1)"));   // unknown dist
  EXPECT_FALSE(parse_dist_spec("r", "garbage"));
}

TEST(SweepEntry, ParsesAxesAndDists) {
  auto lin = parse_sweep_entry("gap=1u:2u:5");
  ASSERT_TRUE(lin.has_value());
  EXPECT_FALSE(lin->is_dist);
  EXPECT_EQ(lin->axis.name, "gap");
  ASSERT_EQ(lin->axis.values.size(), 5u);
  EXPECT_DOUBLE_EQ(lin->axis.values.front(), 1e-6);
  EXPECT_DOUBLE_EQ(lin->axis.values.back(), 2e-6);

  auto list = parse_sweep_entry("v=2,5,10");
  ASSERT_TRUE(list.has_value());
  EXPECT_FALSE(list->is_dist);
  ASSERT_EQ(list->axis.values.size(), 3u);

  auto dist = parse_sweep_entry("r=normal(1k,50)");
  ASSERT_TRUE(dist.has_value());
  EXPECT_TRUE(dist->is_dist);
  EXPECT_EQ(dist->dist.name, "r");

  std::string why;
  EXPECT_FALSE(parse_sweep_entry("noequals", &why));
  EXPECT_FALSE(why.empty());
  EXPECT_FALSE(parse_sweep_entry("x=1:2", &why));      // lo:hi:n arity
  EXPECT_FALSE(parse_sweep_entry("x=1,abc", &why));    // bad list value
}

// ---------------------------------------------------------------------------
// Netlist pre-passes
// ---------------------------------------------------------------------------

TEST(NetlistPrepass, ExtractsParamDistsAndMeasures) {
  const std::string text =
      "* title\n"
      "R1 a 0 {r}\n"
      ".param r dist=normal(1k,50)\n"
      ".param vd dist=uniform(4.5,5.5) ; comment\n"
      ".param fixed 2.5u\n"
      ".measure vout op:out min=2.0 max=3.0\n"
      ".measure floor op:out min=0\n"
      ".op\n"
      ".end\n";
  const auto dists = parse_param_dists(text);
  ASSERT_EQ(dists.size(), 3u);
  EXPECT_EQ(dists[0].name, "r");
  EXPECT_EQ(dists[0].kind, ParamDist::Kind::normal);
  EXPECT_EQ(dists[1].name, "vd");
  EXPECT_EQ(dists[1].kind, ParamDist::Kind::uniform);
  EXPECT_EQ(dists[2].name, "fixed");
  EXPECT_EQ(dists[2].kind, ParamDist::Kind::constant);

  const auto measures = parse_measures(text);
  ASSERT_EQ(measures.size(), 2u);
  EXPECT_EQ(measures[0].label, "vout");
  EXPECT_EQ(measures[0].metric, "op:out");
  EXPECT_TRUE(measures[0].has_lo);
  EXPECT_TRUE(measures[0].has_hi);
  EXPECT_DOUBLE_EQ(measures[0].lo, 2.0);
  EXPECT_DOUBLE_EQ(measures[0].hi, 3.0);
  EXPECT_TRUE(measures[1].has_lo);
  EXPECT_FALSE(measures[1].has_hi);
}

TEST(NetlistPrepass, LaterParamCardOverridesEarlier) {
  const auto dists = parse_param_dists(
      ".param r dist=normal(1k,50)\n.param r dist=uniform(900,1100)\n");
  ASSERT_EQ(dists.size(), 1u);
  EXPECT_EQ(dists[0].kind, ParamDist::Kind::uniform);
}

TEST(NetlistPrepass, MalformedCardsThrow) {
  EXPECT_THROW(parse_param_dists(".param r\n"), NetlistError);
  EXPECT_THROW(parse_param_dists(".param r dist=normal(1k,-2)\n"), NetlistError);
  EXPECT_THROW(parse_measures(".measure v op:out\n"), NetlistError);  // no bound
  EXPECT_THROW(parse_measures(".measure v op:out min=3 max=1\n"), NetlistError);
}

TEST(NetlistPrepass, ParseTreatsStatCardsAsInert) {
  // The full parser must accept .param/.measure cards without trying to
  // interpret them as devices or analyses.
  const std::string text =
      "V1 in 0 5\nR1 in out 1k\nR2 out 0 1k\n"
      ".param r dist=normal(1k,50)\n.measure v op:out min=0\n.op\n.end\n";
  NetlistParser parser;
  const auto net = parser.parse(text);
  EXPECT_EQ(net.analyses.size(), 1u);
}

// ---------------------------------------------------------------------------
// mc_grid composition and determinism
// ---------------------------------------------------------------------------

std::vector<ParamDist> demo_dists() {
  std::vector<ParamDist> dists;
  dists.push_back(*parse_dist_spec("temp", "corner(-40,25,125)"));
  dists.push_back(*parse_dist_spec("r", "normal(1000,50)"));
  dists.push_back(*parse_dist_spec("bias", "0.5"));
  return dists;
}

TEST(McGrid, ComposesAxesCornersAndDraws) {
  std::vector<SweepAxis> axes = {SweepAxis::linspace("gap", 1.0, 2.0, 2)};
  const auto grid = mc_grid(axes, demo_dists(), {7, 4});
  // 2 axis values x 3 corners x 4 MC draws, MC index fastest.
  ASSERT_EQ(grid.size(), 2u * 3u * 4u);
  for (const auto& p : grid) {
    ASSERT_EQ(p.params.size(), 4u);  // gap, temp, r, bias
    EXPECT_EQ(p.params[0].first, "gap");
    EXPECT_EQ(p.params[1].first, "temp");
    EXPECT_EQ(p.params[2].first, "r");
    EXPECT_EQ(p.params[3].first, "bias");
    EXPECT_DOUBLE_EQ(p.value("bias"), 0.5);  // constants fixed everywhere
  }
  // MC fastest: the first four points share gap and corner, differ in r.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(grid[i].value("gap"), 1.0);
    EXPECT_DOUBLE_EQ(grid[i].value("temp"), -40.0);
  }
  EXPECT_NE(grid[0].value("r"), grid[1].value("r"));
  EXPECT_DOUBLE_EQ(grid[4].value("temp"), 25.0);  // next corner after 4 draws

  // The draw for point i is keyed on the GLOBAL index, reproducible alone.
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_EQ(grid[i].value("r"),
              rng_normal(7, i, rng_hash_name("r"), 1000.0, 50.0));
}

TEST(McGrid, NoAxesNoDistsStillReplicates) {
  const auto grid = mc_grid({}, {}, {0, 5});
  ASSERT_EQ(grid.size(), 5u);
  for (const auto& p : grid) EXPECT_TRUE(p.params.empty());
}

TEST(McGrid, SameSeedSameGridDifferentSeedDifferentDraws) {
  std::vector<SweepAxis> axes = {SweepAxis::linspace("gap", 1.0, 2.0, 3)};
  const auto a = mc_grid(axes, demo_dists(), {42, 10});
  const auto b = mc_grid(axes, demo_dists(), {42, 10});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].params, b[i].params);  // exact doubles

  const auto c = mc_grid(axes, demo_dists(), {43, 10});
  EXPECT_NE(a[0].value("r"), c[0].value("r"));
  EXPECT_EQ(a[0].value("gap"), c[0].value("gap"));  // axes ignore the seed
}

// ---------------------------------------------------------------------------
// SweepRunner determinism over an MC grid
// ---------------------------------------------------------------------------

/// Deterministic synthetic job: metric is an exact function of the params.
SweepOutcome synth_job(const SweepPoint& p) {
  SweepOutcome out;
  out.ok = true;
  out.attempts = 1;
  out.metrics = {{"m", p.value("r") * 1e-3 + p.value("gap")}};
  return out;
}

std::vector<SweepPoint> synth_grid(int mc) {
  std::vector<SweepAxis> axes = {SweepAxis::linspace("gap", 1.0, 2.0, 2)};
  std::vector<ParamDist> dists = {*parse_dist_spec("r", "normal(1000,50)")};
  return mc_grid(axes, dists, {42, mc});
}

void expect_same_results(const std::vector<SweepOutcome>& a,
                         const std::vector<SweepOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ok, b[i].ok);
    EXPECT_EQ(a[i].metrics, b[i].metrics);  // bit-exact doubles
  }
}

TEST(McRunner, ResultsBitIdenticalAcrossThreadCounts) {
  const auto grid = synth_grid(64);
  const auto r1 = SweepRunner(1).run(grid, synth_job);
  const auto r2 = SweepRunner(2).run(grid, synth_job);
  const auto r8 = SweepRunner(8).run(grid, synth_job);
  expect_same_results(r1, r2);
  expect_same_results(r1, r8);
}

TEST(McRunner, ShardUnionEqualsUnshardedRun) {
  const auto grid = synth_grid(50);
  SweepRunner runner(2);
  const auto full = runner.run(grid, synth_job);

  auto retry_job = [](const SweepPoint& p, int) { return synth_job(p); };
  const int shards = 3;
  std::vector<SweepOutcome> stitched(grid.size());
  for (int k = 1; k <= shards; ++k) {
    SweepOptions opts;
    opts.shard_index = k;
    opts.shard_count = shards;
    const auto part = runner.run(grid, retry_job, opts);
    ASSERT_EQ(part.size(), grid.size());
    for (std::size_t i = 0; i < part.size(); ++i) {
      EXPECT_EQ(part[i].skipped, !shard_owns(i, k, shards));
      if (!part[i].skipped) stitched[i] = part[i];
    }
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_FALSE(stitched[i].skipped);
    EXPECT_EQ(stitched[i].metrics, full[i].metrics);
  }
}

TEST(McRunner, CheckpointResumeIsBitIdenticalOnMcGrid) {
  const auto grid = synth_grid(40);
  const std::string ckpt = ::testing::TempDir() + "usys_mc_resume.jsonl";
  std::remove(ckpt.c_str());
  SweepRunner runner(2);

  // First pass: run only shard 1 of 2, journaling to the checkpoint.
  SweepOptions first;
  first.shard_index = 1;
  first.shard_count = 2;
  first.checkpoint_path = ckpt;
  auto retry_job = [](const SweepPoint& p, int) { return synth_job(p); };
  const auto half = runner.run(grid, retry_job, first);

  // Second pass: resume the full grid from the half-done journal. Restored
  // points must be bit-identical to the first pass, not recomputed.
  SweepOptions second;
  second.resume_path = ckpt;
  const auto full = runner.run(grid, retry_job, second);
  const auto reference = runner.run(grid, synth_job);
  ASSERT_EQ(full.size(), reference.size());
  int restored = 0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_TRUE(full[i].ok);
    EXPECT_EQ(full[i].metrics, reference[i].metrics);
    if (full[i].restored) {
      ++restored;
      EXPECT_EQ(full[i].metrics, half[i].metrics);
    }
  }
  // Every shard-1 point (half the 2-axis x 40-mc grid) came from the journal.
  EXPECT_EQ(restored, static_cast<int>(grid.size()) / 2);
  std::remove(ckpt.c_str());
}

// ---------------------------------------------------------------------------
// Shard-unique result-file naming (the --shard collision fix)
// ---------------------------------------------------------------------------

TEST(ShardPaths, SuffixGoesBeforeTheExtension) {
  EXPECT_EQ(shard_suffixed_path("out.csv", 1, 2), "out.shard1of2.csv");
  EXPECT_EQ(shard_suffixed_path("out.csv", 2, 2), "out.shard2of2.csv");
  EXPECT_EQ(shard_suffixed_path("stats.jsonl", 3, 8), "stats.shard3of8.jsonl");
  EXPECT_EQ(shard_suffixed_path("noext", 1, 2), "noext.shard1of2");
  // The extension search must not cross a directory separator.
  EXPECT_EQ(shard_suffixed_path("a.b/out", 1, 2), "a.b/out.shard1of2");
  EXPECT_EQ(shard_suffixed_path("a.b/out.csv", 1, 2), "a.b/out.shard1of2.csv");
}

TEST(ShardPaths, IdentityWhenUnsharded) {
  EXPECT_EQ(shard_suffixed_path("out.csv", 0, 0), "out.csv");
  EXPECT_EQ(shard_suffixed_path("out.csv", 1, 1), "out.csv");
}

TEST(ShardPaths, DistinctAcrossAllShards) {
  // The regression this guards: two shards given the same --csv/--stats-out
  // path must never write the same file.
  const int n = 8;
  std::vector<std::string> paths;
  for (int k = 1; k <= n; ++k)
    paths.push_back(shard_suffixed_path("result.csv", k, n));
  for (std::size_t i = 0; i < paths.size(); ++i)
    for (std::size_t j = i + 1; j < paths.size(); ++j)
      EXPECT_NE(paths[i], paths[j]);
}

}  // namespace
}  // namespace usys::spice
