#include "fem/sparse.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace usys::fem {

CsrMatrix CsrMatrix::from_triplets(int n, const std::vector<int>& rows,
                                   const std::vector<int>& cols,
                                   const std::vector<double>& vals) {
  assert(rows.size() == cols.size() && cols.size() == vals.size());
  CsrMatrix m;
  m.n_ = n;

  // Sort triplets by (row, col) via an index permutation, then merge.
  std::vector<std::size_t> order(rows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rows[a] != rows[b]) return rows[a] < rows[b];
    return cols[a] < cols[b];
  });

  m.row_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::size_t idx = order[k];
    if (k > 0) {
      const std::size_t prev = order[k - 1];
      if (rows[idx] == rows[prev] && cols[idx] == cols[prev]) {
        m.vals_.back() += vals[idx];
        continue;
      }
    }
    m.col_idx_.push_back(cols[idx]);
    m.vals_.push_back(vals[idx]);
    ++m.row_ptr_[static_cast<std::size_t>(rows[idx]) + 1];
  }
  for (int i = 0; i < n; ++i)
    m.row_ptr_[static_cast<std::size_t>(i) + 1] += m.row_ptr_[static_cast<std::size_t>(i)];
  return m;
}

void CsrMatrix::multiply(const std::vector<double>& x, std::vector<double>& y) const {
  assert(static_cast<int>(x.size()) == n_);
  y.assign(static_cast<std::size_t>(n_), 0.0);
  for (int r = 0; r < n_; ++r) {
    double s = 0.0;
    for (int k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      s += vals_[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = s;
  }
}

double CsrMatrix::diagonal(int i) const {
  for (int k = row_ptr_[static_cast<std::size_t>(i)];
       k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
    if (col_idx_[static_cast<std::size_t>(k)] == i) return vals_[static_cast<std::size_t>(k)];
  }
  return 0.0;
}

CgResult cg_solve(const CsrMatrix& a, const std::vector<double>& b,
                  std::vector<double>& x, const CgOptions& opts) {
  const int n = a.size();
  if (static_cast<int>(b.size()) != n || static_cast<int>(x.size()) != n)
    throw std::invalid_argument("cg_solve: size mismatch");

  std::vector<double> inv_diag(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double d = a.diagonal(i);
    inv_diag[static_cast<std::size_t>(i)] = (std::abs(d) > 0.0) ? 1.0 / d : 1.0;
  }

  std::vector<double> r(static_cast<std::size_t>(n)), z(static_cast<std::size_t>(n)),
      p(static_cast<std::size_t>(n)), ap(static_cast<std::size_t>(n));
  a.multiply(x, ap);
  double bnorm = 0.0;
  for (int i = 0; i < n; ++i) {
    r[static_cast<std::size_t>(i)] =
        b[static_cast<std::size_t>(i)] - ap[static_cast<std::size_t>(i)];
    bnorm += b[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
  }
  bnorm = std::sqrt(bnorm);
  if (bnorm == 0.0) bnorm = 1.0;

  double rz = 0.0;
  for (int i = 0; i < n; ++i) {
    z[static_cast<std::size_t>(i)] =
        inv_diag[static_cast<std::size_t>(i)] * r[static_cast<std::size_t>(i)];
    rz += r[static_cast<std::size_t>(i)] * z[static_cast<std::size_t>(i)];
  }
  p = z;

  CgResult out;
  for (int it = 0; it < opts.max_iters; ++it) {
    a.multiply(p, ap);
    double pap = 0.0;
    for (int i = 0; i < n; ++i)
      pap += p[static_cast<std::size_t>(i)] * ap[static_cast<std::size_t>(i)];
    if (pap <= 0.0) break;  // matrix not SPD (or p exhausted)
    const double alpha = rz / pap;
    double rnorm = 0.0;
    for (int i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] += alpha * p[static_cast<std::size_t>(i)];
      r[static_cast<std::size_t>(i)] -= alpha * ap[static_cast<std::size_t>(i)];
      rnorm += r[static_cast<std::size_t>(i)] * r[static_cast<std::size_t>(i)];
    }
    rnorm = std::sqrt(rnorm);
    out.iterations = it + 1;
    out.residual = rnorm / bnorm;
    if (out.residual < opts.rtol) {
      out.converged = true;
      return out;
    }
    double rz_new = 0.0;
    for (int i = 0; i < n; ++i) {
      z[static_cast<std::size_t>(i)] =
          inv_diag[static_cast<std::size_t>(i)] * r[static_cast<std::size_t>(i)];
      rz_new += r[static_cast<std::size_t>(i)] * z[static_cast<std::size_t>(i)];
    }
    const double beta = rz_new / rz;
    rz = rz_new;
    for (int i = 0; i < n; ++i) {
      p[static_cast<std::size_t>(i)] =
          z[static_cast<std::size_t>(i)] + beta * p[static_cast<std::size_t>(i)];
    }
  }
  return out;
}

}  // namespace usys::fem
