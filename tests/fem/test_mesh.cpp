#include <gtest/gtest.h>

#include <cmath>

#include "fem/mesh.hpp"

namespace usys::fem {
namespace {

TEST(Mesh, PlateMeshCounts) {
  PlateMeshSpec spec;
  spec.nx = 4;
  spec.ny = 3;
  const Mesh m = make_plate_mesh(spec);
  EXPECT_EQ(m.node_count(), 5 * 4);
  EXPECT_EQ(m.element_count(), 4 * 3 * 2);
}

TEST(Mesh, AllElementsPositivelyOriented) {
  PlateMeshSpec spec;
  spec.nx = 8;
  spec.ny = 8;
  const Mesh m = make_plate_mesh(spec);
  for (int e = 0; e < m.element_count(); ++e) EXPECT_GT(m.twice_area(e), 0.0) << e;
}

TEST(Mesh, TotalAreaMatchesDomain) {
  PlateMeshSpec spec;
  spec.width = 2e-3;
  spec.gap = 1e-4;
  spec.nx = 7;
  spec.ny = 5;
  const Mesh m = make_plate_mesh(spec);
  double area = 0.0;
  for (int e = 0; e < m.element_count(); ++e) area += 0.5 * m.twice_area(e);
  EXPECT_NEAR(area, 2e-3 * 1e-4, 1e-12);
}

TEST(Mesh, ElectrodeTagsCoverRows) {
  PlateMeshSpec spec;
  spec.nx = 6;
  spec.ny = 4;
  const Mesh m = make_plate_mesh(spec);
  EXPECT_EQ(m.nodes_with_tag(BoundaryTag::bottom).size(), 7u);
  EXPECT_EQ(m.nodes_with_tag(BoundaryTag::top).size(), 7u);
}

TEST(Mesh, MarginAddsFringeRegion) {
  PlateMeshSpec spec;
  spec.nx = 4;
  spec.ny = 2;
  spec.side_margin = 0.5e-3;
  spec.margin_cells = 2;
  const Mesh m = make_plate_mesh(spec);
  int margin_elems = 0;
  for (const auto& t : m.triangles()) {
    if (t.region == 1) ++margin_elems;
  }
  EXPECT_EQ(margin_elems, 2 * 2 * 2 * 2);  // two margins * 2 cells * ny * 2 tris
  // Electrode rows must still span only the electrode width.
  EXPECT_EQ(m.nodes_with_tag(BoundaryTag::bottom).size(), 5u);
}

TEST(Mesh, RejectsBadSpecs) {
  PlateMeshSpec bad;
  bad.nx = 0;
  EXPECT_THROW(make_plate_mesh(bad), std::invalid_argument);
  PlateMeshSpec neg;
  neg.gap = -1.0;
  EXPECT_THROW(make_plate_mesh(neg), std::invalid_argument);
}

}  // namespace
}  // namespace usys::fem
