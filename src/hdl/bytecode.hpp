// Bytecode compilation of elaborated HDL-AT models.
//
// The AST interpreter (hdl/interpreter.cpp) re-walks the statement trees of a
// model on every Newton iteration: recursive eval_expr calls, string dispatch
// on operator/function names, std::stoi on encoded pin fields, a linear
// seed_of() scan inside every port read, and a freshly allocated Dual frame
// per run. The paper attributes its ~10x interpreted-model penalty to exactly
// this kind of overhead. This module removes it:
//
//   * compile() runs once per device instance (at bind, when node / branch /
//     seed indices are known) and flattens the selected procedural blocks
//     into a linear register-slot program: numeric opcodes, operands fully
//     pre-resolved — port reads carry their unknown-vector indices and AD
//     seed slots, stamp ops carry their MNA rows and signs, ddt/integ ops
//     carry their state-site ids.
//   * BytecodeVm executes a program with a flat persistent register file
//     (values + a dense regs x seeds gradient block) — no recursion, no
//     allocation, no name lookups on the hot path. One VM serves all four
//     interpreter passes (dc, dc_ddt, transient, commit).
//   * Capture mode redirects stamp gradients into a seeds x seeds scratch
//     block instead of the MNA sink, which is what the jq extraction needs:
//     every stamp row and every gradient column of a device is one of its
//     seed unknowns, so the full n x n scratch matrices the AST path used
//     are never materialized.
//
// Arithmetic mirrors sym::Dual operation for operation (same formulas, same
// evaluation order), so bytecode and AST execution agree bit-for-bit — the
// parity tests in tests/hdl/test_bytecode.cpp hold at 1e-12 and usually
// exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "hdl/elaborate.hpp"
#include "spice/types.hpp"

namespace usys::hdl {

/// Interpreter pass, shared by both executors (see interpreter.hpp header
/// comment for the integrator-substitution semantics of each pass).
enum class HdlPass {
  dc,          ///< ddt = 0, integ = initial
  dc_ddt,      ///< like dc but ddt passes gradients through (jq extraction)
  transient,   ///< full integrator substitution
  commit,      ///< transient formulas + state commit (post-acceptance)
};

/// Per-call-site dynamic state, owned by the device and shared by both
/// executors so switching HdlExecMode mid-simulation stays consistent.
struct DdtSiteState {
  double u_prev = 0.0;
  double udot_prev = 0.0;
};
struct IntegSiteState {
  double s0 = 0.0;
  double s_prev = 0.0;
  double e_prev = 0.0;
};

enum class Op : std::uint8_t {
  kconst,       ///< r[dst] = constants[a], zero gradient
  copy,         ///< r[dst] = r[a]
  read_across,  ///< r[dst] = x[a] - x[c]; seeds b, d (any index may be -1)
  read_branch,  ///< r[dst] = c * x[a]; seed b scaled by sign c (+1/-1)
  neg,          ///< r[dst] = -r[a]
  add,          ///< r[dst] = r[a] + r[b]
  sub,          ///< r[dst] = r[a] - r[b]
  mul,          ///< r[dst] = r[a] * r[b]
  div,          ///< r[dst] = r[a] / r[b]
  pow,          ///< r[dst] = r[a] ^ r[b]
  sin,          ///< r[dst] = sin(r[a])   (likewise for the rest)
  cos,
  tan,
  exp,
  log,
  sqrt,
  abs,
  min,          ///< r[dst] = value-selected copy of r[a] or r[b]
  max,
  limit,        ///< r[dst] = r[a] clamped to [r[b], r[c]] (branch-selected)
  ddt,          ///< r[dst] = ddt site b applied to r[a]
  integ,        ///< r[dst] = integ site b applied to r[a]
  stamp_flow,   ///< stamp r[dst]: +row a (seed b), -row c (seed d)
  stamp_effort, ///< stamp r[dst]: sign c on branch row a (seed b)
  assert_check, ///< commit pass: record site b if r[a].value <= 0
};

struct Insn {
  Op op;
  std::int32_t dst = -1;
  std::int32_t a = -1, b = -1, c = -1, d = -1;
};

/// A compiled, instance-bound model: three linear programs sharing one
/// register file layout. `dc_code` serves the dc and dc_ddt passes,
/// `tran_code` the transient pass, `commit_code` the commit pass (same
/// statements as tran_code plus the ASSERT checks, stamps skipped).
struct BytecodeProgram {
  std::string entity_name;

  int n_regs = 0;                  ///< register-file size
  int n_frame = 0;                 ///< leading registers = model frame slots
  std::vector<double> frame_init;  ///< initial values of the frame registers
  std::vector<double> constants;
  int n_seeds = 0;
  std::vector<int> seed_unknowns;  ///< AD seed slot -> global unknown

  /// Effort-pair plumbing (KCL branch rows), stamped before the program.
  /// Capture mode skips it: the plumbing Jf is pass-independent, so the jq
  /// difference cancels it exactly.
  struct PairPlumb {
    int na = -1, nb = -1;          ///< node rows (may be -1 = ground)
    int br = -1;                   ///< branch row
  };
  std::vector<PairPlumb> pairs;

  std::vector<int> assert_lines;   ///< source line per ASSERT site

  std::vector<Insn> dc_code, tran_code, commit_code;

  int ddt_sites = 0;
  int integ_sites = 0;
};

/// Flattens `model` for one instance. `nodes` maps pin index -> circuit node,
/// `branch_of_pair` maps effort-pair index -> branch unknown, and
/// `seed_unknowns` lists the instance's AD seed slots (interpreter bind()
/// order). Throws ElabError on malformed programs (which elaboration should
/// have rejected — this is the backstop for the old silent-zero paths).
BytecodeProgram compile(const ElaboratedModel& model, const std::vector<int>& nodes,
                        const std::vector<int>& branch_of_pair,
                        const std::vector<int>& seed_unknowns);

/// Executes a BytecodeProgram. Stateless between runs apart from the
/// persistent register storage (reinitialized from frame_init each run).
class BytecodeVm {
 public:
  BytecodeVm() = default;
  explicit BytecodeVm(const BytecodeProgram* prog) { reset(prog); }

  /// (Re)binds the VM to a program and sizes the register file.
  void reset(const BytecodeProgram* prog);

  struct RunIo {
    spice::EvalCtx* ctx = nullptr;  ///< null during commit and capture runs
    const DVector* x = nullptr;
    HdlPass pass = HdlPass::dc;
    double c0 = 0.0, c1 = 1.0;      ///< integrator coefficients
    std::vector<DdtSiteState>* ddt = nullptr;
    std::vector<IntegSiteState>* integ = nullptr;
    /// Capture mode: stamp gradients accumulate into this seeds x seeds
    /// row-major block (row = seed slot of the stamp row) and the MNA sink
    /// plus the effort-pair plumbing are bypassed. Null = normal stamping.
    double* jf_capture = nullptr;
    /// Commit pass: ASSERT sites whose condition evaluated <= 0 are appended
    /// as (site, value). Null = checks skipped.
    std::vector<std::pair<int, double>>* fired_asserts = nullptr;
  };

  void run(const RunIo& io);

 private:
  const BytecodeProgram* prog_ = nullptr;
  std::vector<double> val_;   ///< register values
  std::vector<double> grad_;  ///< register gradients, n_regs x n_seeds
};

}  // namespace usys::hdl
