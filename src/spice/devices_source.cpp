#include "spice/devices_source.hpp"

#include "spice/lint.hpp"

#include "common/constants.hpp"

#include <cmath>

namespace usys::spice {

VSource::VSource(std::string name, int a, int b, std::unique_ptr<Waveform> wave,
                 Nature nature, double ac_mag, double ac_phase_deg)
    : Device(std::move(name)),
      a_(a),
      b_(b),
      wave_(std::move(wave)),
      nature_(nature),
      ac_mag_(ac_mag),
      ac_phase_deg_(ac_phase_deg) {}

VSource::VSource(std::string name, int a, int b, double dc_value, Nature nature)
    : VSource(std::move(name), a, b, std::make_unique<DcWave>(dc_value), nature) {}

void VSource::bind(Binder& binder) {
  binder.require_nature(a_, nature_, name());
  binder.require_nature(b_, nature_, name());
  br_ = binder.alloc_branch(nature_);
}

bool VSource::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_, br_});
  return true;
}

void VSource::lint(LintSink& sink) const { sink.edge(a_, b_, LintEdgeKind::vsource); }

void VSource::evaluate(EvalCtx& ctx) {
  const double i = ctx.v(br_);
  ctx.f_add(a_, i);
  ctx.f_add(b_, -i);
  ctx.jf_add(a_, br_, 1.0);
  ctx.jf_add(b_, br_, -1.0);
  // Branch equation: (va - vb) - V(t) = 0; DC uses t = 0 and source_scale
  // supports the source-stepping continuation.
  const double v = ctx.source_scale * wave_->value(ctx.time);
  ctx.f_add(br_, ctx.v(a_) - ctx.v(b_) - v);
  ctx.jf_add(br_, a_, 1.0);
  ctx.jf_add(br_, b_, -1.0);
}

void VSource::ac_rhs(ZVector& rhs) const {
  if (ac_mag_ == 0.0 || br_ < 0) return;
  const double ph = ac_phase_deg_ * kPi / 180.0;
  rhs[static_cast<std::size_t>(br_)] +=
      std::complex<double>(ac_mag_ * std::cos(ph), ac_mag_ * std::sin(ph));
}

void VSource::breakpoints(std::vector<double>& out) const { wave_->breakpoints(out); }

ISource::ISource(std::string name, int a, int b, std::unique_ptr<Waveform> wave,
                 Nature nature, double ac_mag, double ac_phase_deg)
    : Device(std::move(name)),
      a_(a),
      b_(b),
      wave_(std::move(wave)),
      nature_(nature),
      ac_mag_(ac_mag),
      ac_phase_deg_(ac_phase_deg) {}

ISource::ISource(std::string name, int a, int b, double dc_value, Nature nature)
    : ISource(std::move(name), a, b, std::make_unique<DcWave>(dc_value), nature) {}

void ISource::bind(Binder& binder) {
  binder.require_nature(a_, nature_, name());
  binder.require_nature(b_, nature_, name());
}

bool ISource::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_});
  return true;
}

void ISource::lint(LintSink& sink) const { sink.edge(a_, b_, LintEdgeKind::isource); }

void ISource::evaluate(EvalCtx& ctx) {
  const double i = ctx.source_scale * wave_->value(ctx.time);
  // Current i leaves node a, enters node b (SPICE convention).
  ctx.f_add(a_, i);
  ctx.f_add(b_, -i);
}

void ISource::ac_rhs(ZVector& rhs) const {
  if (ac_mag_ == 0.0) return;
  const double ph = ac_phase_deg_ * kPi / 180.0;
  const std::complex<double> i(ac_mag_ * std::cos(ph), ac_mag_ * std::sin(ph));
  // Residual form f(a) += i  =>  RHS contribution is -i at a, +i at b.
  if (a_ >= 0) rhs[static_cast<std::size_t>(a_)] -= i;
  if (b_ >= 0) rhs[static_cast<std::size_t>(b_)] += i;
}

void ISource::breakpoints(std::vector<double>& out) const { wave_->breakpoints(out); }

namespace {

bool set_dc_param(std::unique_ptr<Waveform>& wave, std::string_view key, double value) {
  if (key != "dc" || !std::isfinite(value)) return false;
  if (dynamic_cast<const DcWave*>(wave.get()) == nullptr) return false;
  wave = std::make_unique<DcWave>(value);
  return true;
}

bool get_dc_param(const Waveform& wave, std::string_view key, double& out) {
  if (key != "dc") return false;
  const auto* dc = dynamic_cast<const DcWave*>(&wave);
  if (dc == nullptr) return false;
  out = dc->value(0.0);
  return true;
}

}  // namespace

bool VSource::set_param(std::string_view key, double value) {
  return set_dc_param(wave_, key, value);
}

bool VSource::get_param(std::string_view key, double& out) const {
  return get_dc_param(*wave_, key, out);
}

bool ISource::set_param(std::string_view key, double value) {
  return set_dc_param(wave_, key, value);
}

bool ISource::get_param(std::string_view key, double& out) const {
  return get_dc_param(*wave_, key, out);
}

}  // namespace usys::spice
