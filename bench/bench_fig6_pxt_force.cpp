// Regenerates Figure 6: the PXT parameter extractor computing the
// electrostatic force on the movable plate of the transducer of Fig. 2a from
// an FE field solution (f = 1/2 integral eps E^2 n dS), using the Table 4
// parameters at zero displacement — "the result corresponds to the force in
// Table 3". Includes mesh-refinement and fringe-field studies, plus both
// extraction methods (Maxwell stress vs virtual work).
#include <iostream>

#include "common/table.hpp"
#include "core/reference.hpp"
#include "pxt/extractor.hpp"

using namespace usys;
using namespace usys::pxt;

int main() {
  std::cout << "=== Figure 6: PXT force extraction from the FE field ===\n\n";

  ExtractionSetup setup;  // width*depth = A = 1e-4 m^2, gap = Table 4 d
  setup.width = 0.1;
  setup.depth = 1e-3;
  setup.gap0 = 0.15e-3;
  setup.nx = 6;
  setup.ny = 10;

  const double f_table3 = analytic_force(setup, 0.0, 10.0);
  std::cout << "Table 3 reference: F = -e0*er*A*V^2/(2 d^2) = " << fmt_sci(f_table3, 5)
            << " N at V = 10 V, x = 0\n\n";

  std::cout << "--- extraction at the paper's operating point ---\n";
  const ExtractionSample s = extract_point(setup, 0.0, 10.0);
  AsciiTable t({"quantity", "FE-extracted", "analytic", "rel.err"});
  t.add_row({"capacitance C [F]", fmt_sci(s.capacitance, 5),
             fmt_sci(analytic_capacitance(setup, 0.0), 5),
             fmt_sci(std::abs(s.capacitance / analytic_capacitance(setup, 0.0) - 1.0), 2)});
  t.add_row({"force (Maxwell stress) [N]", fmt_sci(s.force_mst, 5), fmt_sci(f_table3, 5),
             fmt_sci(std::abs(s.force_mst / f_table3 - 1.0), 2)});
  t.add_row({"force (virtual work) [N]", fmt_sci(s.force_vw, 5), fmt_sci(f_table3, 5),
             fmt_sci(std::abs(s.force_vw / f_table3 - 1.0), 2)});
  t.print(std::cout);

  std::cout << "\n--- mesh refinement (fringe-free: exact at every resolution) ---\n";
  AsciiTable m({"mesh nx x ny", "F_mst [N]", "rel.err vs analytic", "CG iters"});
  for (int n : {2, 4, 8, 16}) {
    ExtractionSetup s2 = setup;
    s2.nx = n;
    s2.ny = n;
    const ExtractionSample e = extract_point(s2, 0.0, 10.0, false);
    m.add_row({fmt_num(n) + "x" + fmt_num(n), fmt_sci(e.force_mst, 6),
               fmt_sci(std::abs(e.force_mst / f_table3 - 1.0), 2),
               fmt_num(e.cg_iterations)});
  }
  m.print(std::cout);

  std::cout << "\n--- voltage sweep at x = 0 (F ~ V^2) ---\n";
  AsciiTable v({"V [V]", "F_mst [N]", "F/F(5V)"});
  double f5 = 0.0;
  for (double volt : {5.0, 10.0, 15.0, 20.0}) {
    const ExtractionSample e = extract_point(setup, 0.0, volt, false);
    if (volt == 5.0) f5 = e.force_mst;
    v.add_row({fmt_num(volt), fmt_sci(e.force_mst, 5), fmt_num(e.force_mst / f5, 4)});
  }
  v.print(std::cout);

  std::cout << "\n--- displacement sweep at V = 10 V (F ~ 1/(d+x)^2) ---\n";
  AsciiTable x({"x [m]", "F_mst [N]", "F_analytic [N]"});
  for (double disp : {-5e-5, -2e-5, 0.0, 2e-5, 5e-5}) {
    const ExtractionSample e = extract_point(setup, disp, 10.0, false);
    x.add_row({fmt_num(disp), fmt_sci(e.force_mst, 5),
               fmt_sci(analytic_force(setup, disp, 10.0), 5)});
  }
  x.print(std::cout);

  std::cout << "\n--- fringe-field extension (the paper notes 'the fringe field was "
               "not modeled') ---\n";
  AsciiTable fr({"side margin [m]", "C [F]", "C/C_ideal"});
  for (double margin : {0.0, 2e-4, 5e-4, 1e-3}) {
    ExtractionSetup s3 = setup;
    s3.width = 1e-3;  // narrow plate so the fringe is visible
    s3.side_margin = margin;
    s3.nx = 10;
    s3.ny = 10;
    const ExtractionSample e = extract_point(s3, 0.0, 10.0, false);
    fr.add_row({fmt_num(margin), fmt_sci(e.capacitance, 5),
                fmt_num(e.capacitance / analytic_capacitance(s3, 0.0), 5)});
  }
  fr.print(std::cout);
  return 0;
}
