#include "server/client.hpp"

#include <ostream>

#include "common/json.hpp"
#include "common/socket.hpp"

namespace usys::server {

int run_client(const std::string& socket_path, const Request& req, std::ostream& out,
               std::ostream& err) {
  UnixConn conn = UnixConn::connect_to(socket_path);
  if (!conn.valid()) {
    err << "error: cannot connect to server socket '" << socket_path << "'\n";
    return 2;
  }
  if (!conn.write_all(build_request(req) + "\n")) {
    err << "error: failed to send request\n";
    return 2;
  }

  // Stream frames until a terminal one. Every line is echoed verbatim —
  // the wire format IS the client output format.
  std::string line;
  int last_error_code = -1;
  while (conn.read_line(line)) {
    out << line << "\n";
    const auto frame = json_parse(line);
    if (!frame || !frame->is_object()) continue;
    const std::string name = frame->get_string("frame");
    if (name == "done") return static_cast<int>(frame->get_number("exit_code", 1));
    if (name == "busy") return 1;
    if (name == "pong" || name == "bye" || name == "stats") return 0;
    // A rejected request gets a lone error frame and the connection closes;
    // a failed run's error frame is followed by done. Remember the code and
    // keep reading — EOF decides which case this was.
    if (name == "error") last_error_code = static_cast<int>(frame->get_number("code", 2));
  }
  if (last_error_code >= 0) return last_error_code;
  err << "error: connection closed before a terminal frame\n";
  return 2;
}

}  // namespace usys::server
