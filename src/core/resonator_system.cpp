#include "api/api.hpp"
#include "core/resonator_system.hpp"

namespace usys::core {

ResonatorSystem build_resonator_system(const ResonatorParams& params,
                                       TransducerModelKind kind,
                                       std::unique_ptr<spice::Waveform> drive,
                                       const LinearizationOptions& lin_opts) {
  ResonatorSystem sys;
  sys.circuit = std::make_unique<spice::Circuit>();
  auto& ckt = *sys.circuit;

  sys.node_drive = ckt.add_node("drive", Nature::electrical);
  sys.node_vel = ckt.add_node("vel", Nature::mechanical_translation);
  sys.node_disp = ckt.add_node("disp", Nature::mechanical_translation);
  const int gnd = spice::Circuit::kGround;

  sys.source = &ckt.add<spice::VSource>("Vdrive", sys.node_drive, gnd, std::move(drive));

  // The transducer: electrical (drive, 0), mechanical free plate at `vel`
  // reacting against the fixed frame (ground).
  switch (kind) {
    case TransducerModelKind::behavioral:
      sys.behavioral = &ckt.add<TransverseElectrostatic>(
          "XT", sys.node_drive, gnd, sys.node_vel, gnd, params.geom);
      break;
    case TransducerModelKind::linearized: {
      const LinearizedCoefficients coeffs = linearize_transverse(params, lin_opts);
      sys.linearized = &ckt.add<LinearizedTransverseElectrostatic>(
          "XT", sys.node_drive, gnd, sys.node_vel, gnd, coeffs);
      break;
    }
  }

  // Mechanical resonator: mass, spring, damper from the plate to the frame
  // (C = m, L = 1/k, R = 1/alpha in the FI-analogy circuit of Fig. 4).
  ckt.add<spice::Mass>("M", sys.node_vel, params.mass);
  ckt.add<spice::Spring>("K", sys.node_vel, gnd, params.stiffness);
  ckt.add<spice::Damper>("ALPHA", sys.node_vel, gnd, params.damping);

  // Displacement probe: disp = integral(vel), the "voltage D" of Fig. 5.
  ckt.add<spice::StateIntegrator>("XDISP", sys.node_disp, sys.node_vel);
  return sys;
}

Fig5Trace run_fig5(const ResonatorParams& params, TransducerModelKind kind,
                   const std::vector<double>& levels, double total_time,
                   double rise_fall, const spice::TranOptions& tran_opts,
                   const LinearizationOptions& lin_opts) {
  auto drive = spice::make_fig5_pulse_train(levels, total_time, rise_fall, rise_fall);
  ResonatorSystem sys =
      build_resonator_system(params, kind, std::move(drive), lin_opts);

  spice::TranOptions opts = tran_opts;
  opts.tstop = total_time;
  Fig5Trace out;
  out.raw = api::transient(*sys.circuit, opts);
  if (!out.raw.ok) return out;
  out.time = out.raw.time;
  out.displacement = out.raw.signal(sys.node_disp);
  out.drive_voltage = out.raw.signal(sys.node_drive);
  return out;
}

}  // namespace usys::core
