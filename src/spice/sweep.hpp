// SweepRunner — batch parameter-grid execution over a thread pool.
//
// Fans a cartesian parameter grid (e.g. transducer gap x drive amplitude x
// array size) across workers; every grid point gets its own circuit and
// AnalysisEngine built by a caller-supplied job (worker-local state, no
// sharing), so points are fully isolated and the result vector is
// deterministic: results[i] always corresponds to grid[i], whatever the
// execution interleaving. Backs `usim --sweep` and bench_array_scaling.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace usys::spice {

/// One sweep dimension: a named list of values.
struct SweepAxis {
  std::string name;
  std::vector<double> values;

  /// n evenly spaced values over [lo, hi] (n == 1 yields just lo).
  static SweepAxis linspace(std::string name, double lo, double hi, int n);
};

/// One grid point: (name, value) per axis, in axis order.
struct SweepPoint {
  std::vector<std::pair<std::string, double>> params;

  /// Value of a named parameter; throws std::out_of_range if absent.
  double value(const std::string& name) const;
};

/// Cartesian product of the axes, last axis fastest (row-major).
std::vector<SweepPoint> sweep_grid(const std::vector<SweepAxis>& axes);

/// What one grid point produced: a flat list of named scalar metrics, or an
/// error. Metric names should be identical across points so results
/// tabulate into columns.
struct SweepOutcome {
  bool ok = false;
  std::string error;
  std::vector<std::pair<std::string, double>> metrics;
};

class SweepRunner {
 public:
  /// The per-point job: build the circuit (worker-local), run its analyses
  /// through an AnalysisEngine, and distill scalar metrics. Exceptions are
  /// captured into the point's outcome — they fail the point, not the batch.
  using Job = std::function<SweepOutcome(const SweepPoint&)>;

  /// threads: 0 = auto (hardware concurrency), otherwise exactly that many
  /// workers (including the calling thread).
  explicit SweepRunner(int threads = 0);

  int thread_count() const noexcept { return threads_; }

  /// Runs `job` for every point of `grid` across the pool. results[i] is
  /// grid[i]'s outcome.
  std::vector<SweepOutcome> run(const std::vector<SweepPoint>& grid, const Job& job) const;

 private:
  int threads_;
};

}  // namespace usys::spice
