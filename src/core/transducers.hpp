// Non-linear lumped-parameter behavioral transducer devices (Fig. 2 a-d).
//
// These are the native-C++ equivalents of the paper's HDL-A models: each is
// a conservative two-port between the electrical and mechanical translation
// domains, valid for large signals. The displacement state is carried
// internally as x = integ(v_c - v_d), mirroring `x := integ(S)` in the
// paper's Listing 1; consequently the DC operating point pins x at its
// initial value (exactly the HDL-A semantics — see DESIGN.md).
//
// Sign conventions (validated by the energy-conservation property tests):
//  * pin c is the *free plate / armature / coil* mechanical terminal, pin d
//    the reference frame it reacts against (usually ground);
//  * x = integral of (v_c - v_d): positive x opens the gap of (a)/(c) and
//    reduces the overlap of (b);
//  * the device delivers the Table 3 force (negative = attraction) into
//    pin c and the opposite reaction into pin d.
//
// Electrode collision: the gap-closing devices clamp the effective gap at
// `gap_floor` (default d/1000) and log one warning — a crude but robust
// contact model that keeps Newton finite through pull-in experiments.
#pragma once

#include "core/reference.hpp"
#include "spice/circuit.hpp"

namespace usys::core {

using spice::AcceptCtx;
using spice::Binder;
using spice::Device;
using spice::EvalCtx;
using spice::InternalState;

/// Common machinery of the four transducers: pins, the displacement state.
class TransducerBase : public Device {
 public:
  TransducerBase(std::string name, int a, int b, int c, int d, TransducerGeometry geom);

  void bind(Binder& binder) override;
  void start_transient(const DVector& x_dc) override;
  void accept(const AcceptCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;

  /// Initial plate displacement (default 0 = rest position).
  void set_initial_displacement(double x0) noexcept { xstate_.set_initial(x0); }

  /// Committed displacement after the last accepted step (for probing).
  double displacement() const noexcept { return xstate_.committed(); }

  const TransducerGeometry& geometry() const noexcept { return geom_; }

 protected:
  /// Relative plate velocity v_c - v_d at the current iterate.
  double velocity(const EvalCtx& ctx) const { return ctx.v(c_) - ctx.v(d_); }
  /// Current displacement under the step's integration formula.
  double disp(const EvalCtx& ctx) const { return xstate_.value(velocity(ctx), ctx); }
  /// d(displacement)/d(velocity unknown) for the chain rule.
  double disp_slope(const EvalCtx& ctx) const { return xstate_.slope(ctx); }

  /// Adds a force `f_plate` delivered into pin c (reaction into pin d),
  /// with partial derivatives given w.r.t. voltage-like and x-like scalars.
  /// dfdx is mapped through the integrator slope onto the velocity columns.
  void stamp_mech_force(EvalCtx& ctx, double f_plate, double df_dva, double df_dvb,
                        double df_dx, double df_dbr, int br) const;

  int a_, b_, c_, d_;  // pins: (a,b) electrical, (c,d) mechanical
  TransducerGeometry geom_;
  InternalState xstate_;
  mutable bool collision_warned_ = false;
};

/// (a) Transverse electrostatic (gap-closing plate), Listing 1 of the paper.
///   C(x) = eps*A/(d+x);  i = d(C(x) V)/dt;  F_plate = -eps*A*V^2/(2 (d+x)^2).
class TransverseElectrostatic final : public TransducerBase {
 public:
  using TransducerBase::TransducerBase;
  void evaluate(EvalCtx& ctx) override;

  /// Effective (collision-clamped) gap at displacement x.
  double effective_gap(double x) const;
};

/// (b) Parallel (sliding-plate) electrostatic:
///   C(x) = eps*h*(l-x)/d;  F_plate = -eps*h*V^2/(2 d)  (x-independent).
class ParallelElectrostatic final : public TransducerBase {
 public:
  using TransducerBase::TransducerBase;
  void evaluate(EvalCtx& ctx) override;

  /// Effective overlap (clamped at a small positive floor).
  double effective_overlap(double x) const;
};

/// (c) Electromagnetic (variable reluctance):
///   L(x) = mu0*A*N^2/(2 (d+x));  v = d(L(x) i)/dt;
///   F_armature = -mu0*A*N^2*i^2/(4 (d+x)^2).
/// Carries a branch unknown (the coil current).
class ElectromagneticTransducer final : public TransducerBase {
 public:
  using TransducerBase::TransducerBase;
  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;

  int branch() const noexcept { return br_; }
  double effective_gap(double x) const;

 private:
  int br_ = -1;
};

/// (d) Electrodynamic (voice coil in a radial field B):
///   v = L di/dt + T u;  F_coil = T i;  T = 2 pi N r B;  L = mu0 N^2 r / 2.
/// The coupling is a gyrator — linear and conservative for constant B.
class ElectrodynamicTransducer final : public TransducerBase {
 public:
  using TransducerBase::TransducerBase;
  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;

  int branch() const noexcept { return br_; }

 private:
  int br_ = -1;
};

}  // namespace usys::core
