// Abstract syntax tree of HDL-AT models.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/nature.hpp"

namespace usys::hdl {

// --- Expressions -------------------------------------------------------------

enum class ExprKind {
  number,
  name,        ///< generic or variable reference
  port_read,   ///< [p, q].field  (field: v, i, tv, f)
  unary_neg,
  binary,      ///< op in {+, -, *, /, ^}
  call,        ///< ddt, integ, sin, cos, tan, exp, log, sqrt, abs, pow
};

struct ExprNode;
using ExprPtr = std::unique_ptr<ExprNode>;

struct ExprNode {
  ExprKind kind;
  int line = 0;

  double number = 0.0;                 // number
  std::string name;                    // name / call function / binary op / port field
  std::string pin1, pin2;              // port_read
  std::vector<ExprPtr> args;           // unary/binary/call operands

  /// Call-site id for ddt/integ state bookkeeping (assigned at elaboration).
  int site_id = -1;
};

// --- Statements ---------------------------------------------------------------

enum class StmtKind {
  assign,        ///< name := expr ;
  contribution,  ///< [p, q].field %= expr ;
  assertion,     ///< ASSERT expr ;  (boundary-condition check, warns if <= 0)
};

struct Stmt {
  StmtKind kind;
  int line = 0;
  std::string target;        // assign: variable name
  std::string pin1, pin2;    // contribution pins (source names, for diagnostics)
  std::string field;         // contribution field: "i", "f" (flow) or "v" (effort)
  ExprPtr expr;

  // Resolved at elaboration (no string parsing on the hot path):
  int slot = -1;             // assign: frame slot of `target`; assertion: site id
  int p1 = -1, p2 = -1;      // contribution: pin indices
};

// --- Declarations ---------------------------------------------------------------

struct GenericDecl {
  std::string name;
  bool has_default = false;
  double default_value = 0.0;
};

struct PinDecl {
  std::string name;
  Nature nature;
};

struct VarDecl {
  std::string name;
  bool is_state = false;  ///< STATE vs VARIABLE (informational; history lives
                          ///< in the ddt/integ call sites)
};

/// One PROCEDURAL FOR <domains> => block.
struct ProceduralBlock {
  std::vector<std::string> domains;  ///< lowercase: init, dc, ac, transient
  std::vector<Stmt> stmts;

  bool has_domain(const std::string& d) const {
    for (const auto& s : domains) {
      if (s == d) return true;
    }
    return false;
  }
};

struct Architecture {
  std::string name;
  std::string entity;
  std::vector<VarDecl> variables;
  std::vector<ProceduralBlock> blocks;
};

struct Entity {
  std::string name;
  std::vector<GenericDecl> generics;
  std::vector<PinDecl> pins;
};

/// A parsed compilation unit (one or more entity/architecture pairs).
struct DesignUnit {
  std::vector<Entity> entities;
  std::vector<Architecture> architectures;

  const Entity* find_entity(const std::string& name) const;
  const Architecture* find_architecture_of(const std::string& entity) const;
};

}  // namespace usys::hdl
