// usim — command-line netlist simulator (the "SPICE" of this repository).
//
//   usim <netlist.cir> [--csv=<path>] [--quiet]
//
// Reads a SPICE-style netlist (including the transducer X-cards registered
// by usys::core), runs every analysis card in order, and prints results:
//   .op    node efforts and branch count
//   .tran  decimated node-effort table (full resolution to --csv)
//   .ac    |H| dB / phase table for every node
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/table.hpp"
#include "core/netlist_ext.hpp"
#include "spice/analysis.hpp"

using namespace usys;

namespace {

int run_op(spice::Circuit& ckt) {
  const auto op = spice::operating_point(ckt);
  if (!op.converged) {
    std::cerr << "error: operating point did not converge\n";
    return 1;
  }
  std::cout << "\n=== .op ===\n";
  AsciiTable t({"node", "nature", "effort"});
  for (int i = 0; i < ckt.node_count(); ++i) {
    t.add_row({ckt.node_name(i), std::string(to_string(ckt.node_nature(i))),
               fmt_sci(op.at(i), 6)});
  }
  t.print(std::cout);
  std::cout << "(" << ckt.branch_count() << " branch unknowns, "
            << op.newton_iterations << " Newton iterations)\n";
  return 0;
}

int run_tran(spice::Circuit& ckt, const spice::TranOptions& opts,
             const std::string& csv) {
  const auto res = spice::transient(ckt, opts);
  if (!res.ok) {
    std::cerr << "error: transient failed: " << res.error << "\n";
    return 1;
  }
  std::cout << "\n=== .tran to " << opts.tstop << " s (" << res.time.size()
            << " points, " << res.total_newton_iters << " Newton iters, "
            << res.rejected_steps << " rejected steps) ===\n";
  std::vector<std::string> headers{"t [s]"};
  for (int i = 0; i < ckt.node_count(); ++i) headers.push_back(ckt.node_name(i));
  AsciiTable t(headers);
  const int rows = 20;
  for (int r = 0; r <= rows; ++r) {
    const double time = opts.tstop * static_cast<double>(r) / rows;
    std::vector<std::string> cells{fmt_num(time, 5)};
    for (int i = 0; i < ckt.node_count(); ++i) cells.push_back(fmt_sci(res.sample(time, i), 4));
    t.add_row(std::move(cells));
  }
  t.print(std::cout);
  if (!csv.empty()) {
    std::vector<std::vector<double>> data;
    for (std::size_t k = 0; k < res.time.size(); ++k) {
      std::vector<double> row{res.time[k]};
      for (int i = 0; i < ckt.node_count(); ++i) row.push_back(res.at(k, i));
      data.push_back(std::move(row));
    }
    std::vector<std::string> ch{"t"};
    for (int i = 0; i < ckt.node_count(); ++i) ch.push_back(ckt.node_name(i));
    if (write_csv(csv, ch, data)) std::cout << "full series -> " << csv << "\n";
  }
  return 0;
}

int run_ac(spice::Circuit& ckt, const spice::AcOptions& opts) {
  const auto res = spice::ac_sweep(ckt, opts);
  if (!res.ok) {
    std::cerr << "error: ac failed: " << res.error << "\n";
    return 1;
  }
  std::cout << "\n=== .ac " << opts.f_start << " .. " << opts.f_stop << " Hz ===\n";
  std::vector<std::string> headers{"f [Hz]"};
  for (int i = 0; i < ckt.node_count(); ++i) {
    headers.push_back(ckt.node_name(i) + " dB");
    headers.push_back(ckt.node_name(i) + " deg");
  }
  AsciiTable t(headers);
  const std::size_t step = std::max<std::size_t>(1, res.freq.size() / 20);
  for (std::size_t k = 0; k < res.freq.size(); k += step) {
    std::vector<std::string> cells{fmt_num(res.freq[k], 5)};
    for (int i = 0; i < ckt.node_count(); ++i) {
      cells.push_back(fmt_num(res.magnitude_db(k, i), 4));
      cells.push_back(fmt_num(res.phase_deg(k, i), 4));
    }
    t.add_row(std::move(cells));
  }
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: usim <netlist.cir> [--csv=<path>]\n";
    return 2;
  }
  std::string csv;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--csv=", 6) == 0) csv = argv[i] + 6;
  }

  std::ifstream file(argv[1]);
  if (!file) {
    std::cerr << "error: cannot open '" << argv[1] << "'\n";
    return 2;
  }
  std::stringstream buf;
  buf << file.rdbuf();

  try {
    auto parser = core::make_full_parser();
    spice::Netlist net = parser.parse(buf.str());
    if (!net.title.empty()) std::cout << "*" << net.title << "\n";
    if (net.analyses.empty()) {
      std::cout << "(no analysis cards; running .op)\n";
      return run_op(*net.circuit);
    }
    for (const auto& card : net.analyses) {
      int rc = 0;
      switch (card.kind) {
        case spice::AnalysisCard::Kind::op:
          rc = run_op(*net.circuit);
          break;
        case spice::AnalysisCard::Kind::tran:
          rc = run_tran(*net.circuit, card.tran, csv);
          break;
        case spice::AnalysisCard::Kind::ac:
          rc = run_ac(*net.circuit, card.ac);
          break;
      }
      if (rc != 0) return rc;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
